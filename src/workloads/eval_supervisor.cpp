#include "workloads/eval_supervisor.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace autodml::wl {

double backoff_mean_seconds(const RetryPolicy& policy, int retry_index) {
  const double grown = policy.backoff_base_seconds *
                       std::pow(policy.backoff_multiplier, retry_index - 1);
  return std::min(policy.backoff_cap_seconds, grown);
}

EvalSupervisor::EvalSupervisor(Evaluator& evaluator, RetryPolicy policy,
                               std::uint64_t seed)
    : evaluator_(&evaluator), policy_(policy), seed_(seed) {}

EvalResult EvalSupervisor::run_attempt(const conf::Config& config,
                                       core::RunController* controller) {
  ADML_SPAN("eval.attempt");
  auto run = evaluator_->start(config);
  if (run->failed()) return run->result();

  const bool has_timeout = std::isfinite(policy_.attempt_timeout_seconds);
  if (controller == nullptr && !has_timeout) return run->result();

  // The on_run_start call below is the attempt boundary the controller
  // contract promises — it must happen once per attempt (not once per
  // evaluation), so the controller can discard state accumulated against a
  // previous attempt: the confirmation streak (inherited, it could kill a
  // fresh retry at its first checkpoint) and the streamed curve points (a
  // retry re-streams the same curve from wall-clock zero, so the old
  // points would be non-monotone replicates that break the curve fit).
  // See RunController::on_run_start and EarlyTerminationPolicy.
  if (controller != nullptr) controller->on_run_start(run->usd_per_hour());
  while (auto checkpoint = run->next_checkpoint()) {
    if (has_timeout &&
        checkpoint->wall_seconds >= policy_.attempt_timeout_seconds) {
      // A hung evaluation is a property of the configuration, not the
      // environment: classify deterministically so it is never retried
      // and the feasibility model learns the region. (Enforced at
      // checkpoint granularity; the charged time is what was streamed.)
      EvalResult timed_out = run->abort();
      timed_out.terminated_early = false;
      timed_out.feasible = false;
      timed_out.failure_kind = core::FailureKind::kEvalTimeout;
      timed_out.failure =
          "evaluation attempt exceeded timeout (" +
          std::to_string(policy_.attempt_timeout_seconds) + "s)";
      return timed_out;
    }
    if (controller != nullptr) {
      core::RunCheckpoint cp;
      cp.wall_seconds = checkpoint->wall_seconds;
      cp.samples = checkpoint->samples;
      cp.metric = checkpoint->metric;
      if (controller->should_abort(cp)) return run->abort();
    }
  }
  return run->result();
}

SupervisedOutcome EvalSupervisor::evaluate(const conf::Config& config,
                                           core::RunController* controller) {
  ADML_SPAN("eval.supervised");
  // Per-evaluation jitter stream: derived from the supervisor seed and the
  // evaluation index only, so journal replay can skip it with a counter
  // bump (mirrors Evaluator::start's per-run stream derivation). Claim the
  // index under the lock; everything after runs with it released.
  std::uint64_t mix;
  {
    util::MutexLock lock(mu_);
    mix = seed_ ^ (0x9e3779b97f4a7c15ULL * (eval_counter_ + 1));
    ++eval_counter_;
  }
  util::Rng rng(util::splitmix64(mix));

  SupervisedOutcome out;
  const int max_attempts = std::max(1, policy_.max_attempts);
  while (true) {
    EvalResult attempt = run_attempt(config, controller);
    ++out.attempts;
    out.total_spent_seconds += attempt.spent_seconds;
    out.total_spent_usd += attempt.spent_usd;
    out.attempt_kinds.push_back(attempt.failure_kind);
    out.result = std::move(attempt);

    const bool retryable = !out.result.feasible &&
                           !out.result.terminated_early &&
                           core::is_transient(out.result.failure_kind);
    if (!retryable || out.attempts >= max_attempts) break;

    // Capped exponential backoff with jitter before the retry. Waiting
    // burns search wall-clock (the ledger sees it) but no cluster dollars.
    ADML_TRACE_INSTANT("eval.backoff");
    ADML_COUNT("eval.retries", 1);
    const double mean = backoff_mean_seconds(policy_, out.attempts);
    const double jitter =
        1.0 + policy_.jitter_fraction * (2.0 * rng.uniform() - 1.0);
    const double delay = mean * jitter;
    out.backoff_seconds += delay;
    out.total_spent_seconds += delay;
    evaluator_->charge_overhead(delay, 0.0);
  }
  ADML_COUNT("eval.attempts", out.attempts);
  ADML_GAUGE_ADD("eval.backoff_simulated_seconds", out.backoff_seconds);
  if (!out.result.feasible && core::is_transient(out.result.failure_kind))
    ADML_COUNT("eval.unrecovered_transient", 1);
  return out;
}

core::RunOutcome SupervisedObjective::run(const conf::Config& config,
                                          core::RunController* controller) {
  const Objective objective = supervisor_->evaluator().options().objective;
  SupervisedOutcome sup = supervisor_->evaluate(config, controller);

  core::RunOutcome out;
  out.feasible = sup.result.feasible;
  out.aborted = sup.result.terminated_early;
  out.failure_kind = sup.result.failure_kind;
  out.failure = sup.result.failure;
  out.objective = sup.result.objective_value(objective);
  out.usd_per_hour = sup.result.usd_per_hour;
  // The tuner's budget accounting must see the true price of the
  // evaluation: all attempts plus backoff, not just the final attempt.
  out.spent_seconds = sup.total_spent_seconds;
  out.attempts = sup.attempts;
  return out;
}

void SupervisedObjective::notify_replayed(const core::Trial& trial) {
  supervisor_->skip_evaluation();
  for (int i = 0; i < trial.outcome.attempts; ++i) {
    supervisor_->evaluator().skip_run();
  }
}

}  // namespace autodml::wl

// Adapter binding the core tuner's black-box interface to the simulated
// distributed-ML evaluator. This is where the tuner's RunController hook is
// wired to the evaluator's checkpoint stream.
#pragma once

#include "core/tuner_types.h"
#include "workloads/evaluator.h"

namespace autodml::wl {

class EvaluatorObjective final : public core::ObjectiveFunction {
 public:
  /// The evaluator must outlive the adapter.
  explicit EvaluatorObjective(Evaluator& evaluator) : evaluator_(&evaluator) {}

  const conf::ConfigSpace& space() const override {
    return evaluator_->space();
  }

  double target_metric() const override {
    return evaluator_->workload().stat.target_metric;
  }

  bool objective_is_cost() const override {
    return evaluator_->options().objective == Objective::kCostToAccuracy;
  }

  core::RunOutcome run(const conf::Config& config,
                       core::RunController* controller) override;

  void notify_replayed(const core::Trial& trial) override {
    // Advance the evaluator's per-run seed stream exactly as the live
    // evaluations would have, so post-resume runs see identical randomness.
    for (int i = 0; i < trial.outcome.attempts; ++i) evaluator_->skip_run();
  }

  Evaluator& evaluator() { return *evaluator_; }

 private:
  Evaluator* evaluator_;
};

/// Convert one finished EvalResult to the tuner's trial record (used to
/// seed warm starts from previous tuning sessions).
core::Trial to_trial(const EvalResult& result, Objective objective);

}  // namespace autodml::wl

#include "workloads/workload.h"

#include <algorithm>
#include <stdexcept>

namespace autodml::wl {

namespace {

std::vector<Workload> build_suite() {
  std::vector<Workload> suite;
  const std::vector<std::int64_t> kWorkers = {1, 2, 4, 8, 16, 32, 64};
  const std::vector<std::int64_t> kServers = {1, 2, 4, 8, 16};
  const std::vector<std::int64_t> kBatches = {8, 16, 32, 64, 128, 256, 512};

  {
    // Click-through-rate logistic regression: small dense model, cheap
    // per-sample compute, target driven by huge sample counts.
    Workload w;
    w.name = "logreg-ads";
    w.description = "ad CTR logistic regression, 10M dense features";
    w.model_bytes = 40e6;
    w.flops_per_sample = 2.5e7;
    w.activation_bytes_per_sample = 2e4;
    w.stat.base_samples = 6e6;
    w.stat.critical_batch = 1024;
    w.stat.base_lr = 0.08;
    w.stat.reference_batch = 32;
    w.stat.staleness_coeff = 0.02;  // convex: tolerant of staleness
    w.stat.staleness_power = 1.0;
    w.stat.target_metric = 0.90;
    w.stat.metric_ceiling = 0.94;
    w.worker_menu = kWorkers;
    w.server_menu = kServers;
    w.batch_menu = kBatches;
    w.worker_instance_menu = {"std4", "std8", "std16", "cpu16"};
    suite.push_back(std::move(w));
  }
  {
    // Matrix-factorization recommender: giant embedding table, trivial
    // compute -> communication-bound; compression and server scaling rule.
    Workload w;
    w.name = "mf-recsys";
    w.description = "matrix factorization recommender, 800MB embeddings";
    w.model_bytes = 800e6;
    w.flops_per_sample = 4e6;
    w.activation_bytes_per_sample = 1e4;
    w.stat.base_samples = 3e7;
    w.stat.critical_batch = 4096;
    w.stat.base_lr = 0.02;
    w.stat.reference_batch = 64;
    w.stat.staleness_coeff = 0.04;
    w.stat.staleness_power = 1.1;
    w.stat.target_metric = 0.92;
    w.stat.metric_ceiling = 0.96;
    w.worker_menu = kWorkers;
    w.server_menu = kServers;
    w.batch_menu = kBatches;
    w.worker_instance_menu = {"std8", "std16", "net8", "mem8"};
    suite.push_back(std::move(w));
  }
  {
    // Tabular MLP: balanced compute/communication, mid-size everything.
    Workload w;
    w.name = "mlp-tabular";
    w.description = "3-layer MLP on tabular features";
    w.model_bytes = 120e6;
    w.flops_per_sample = 2.4e8;
    w.activation_bytes_per_sample = 4e5;
    w.stat.base_samples = 8e6;
    w.stat.critical_batch = 2048;
    w.stat.base_lr = 0.05;
    w.stat.reference_batch = 32;
    w.stat.staleness_coeff = 0.08;
    w.stat.staleness_power = 1.15;
    w.stat.target_metric = 0.88;
    w.stat.metric_ceiling = 0.93;
    w.worker_menu = kWorkers;
    w.server_menu = kServers;
    w.batch_menu = kBatches;
    w.worker_instance_menu = {"std8", "std16", "cpu16", "gpu1"};
    suite.push_back(std::move(w));
  }
  {
    // Small CNN: compute-heavy per sample, modest model -> GPU shapes and
    // large effective batches win; stragglers under BSP start to matter.
    Workload w;
    w.name = "cnn-cifar";
    w.description = "CIFAR-scale CNN";
    w.model_bytes = 60e6;
    w.flops_per_sample = 3.2e9;
    w.activation_bytes_per_sample = 6e6;
    w.stat.base_samples = 4e6;
    w.stat.critical_batch = 1024;
    w.stat.base_lr = 0.1;
    w.stat.reference_batch = 64;
    w.stat.staleness_coeff = 0.15;  // non-convex: staleness hurts
    w.stat.staleness_power = 1.25;
    w.stat.target_metric = 0.91;
    w.stat.metric_ceiling = 0.95;
    w.worker_menu = kWorkers;
    w.server_menu = kServers;
    w.batch_menu = kBatches;
    w.worker_instance_menu = {"std16", "cpu16", "gpu1", "gpu4"};
    suite.push_back(std::move(w));
  }
  {
    // ImageNet-scale residual network: the heavyweight; both compute- and
    // communication-intensive, deep straggler sensitivity.
    Workload w;
    w.name = "resnet-imagenet";
    w.description = "ImageNet-scale residual network";
    w.model_bytes = 110e6;
    w.flops_per_sample = 8e9;
    w.activation_bytes_per_sample = 3e7;
    w.stat.base_samples = 1.2e7;
    w.stat.critical_batch = 8192;
    w.stat.base_lr = 0.1;
    w.stat.reference_batch = 256;
    w.stat.staleness_coeff = 0.2;
    w.stat.staleness_power = 1.25;
    w.stat.target_metric = 0.75;
    w.stat.initial_metric = 0.01;
    w.stat.metric_ceiling = 0.78;
    w.worker_menu = kWorkers;
    w.server_menu = kServers;
    w.batch_menu = {16, 32, 64, 128, 256, 512};
    w.worker_instance_menu = {"gpu1", "gpu4", "cpu16", "std16"};
    suite.push_back(std::move(w));
  }
  {
    // Word embeddings: enormous sparse model, trivial compute, very
    // staleness-tolerant -> the ASP/top-k corner of the space.
    Workload w;
    w.name = "word2vec-text";
    w.description = "skip-gram word embeddings, 1.2GB table";
    w.model_bytes = 1.2e9;
    w.flops_per_sample = 6e5;
    w.activation_bytes_per_sample = 4e3;
    w.stat.base_samples = 8e7;
    w.stat.critical_batch = 8192;
    w.stat.base_lr = 0.025;
    w.stat.reference_batch = 128;
    w.stat.staleness_coeff = 0.012;
    w.stat.staleness_power = 1.0;
    w.stat.target_metric = 0.85;
    w.stat.metric_ceiling = 0.90;
    w.worker_menu = kWorkers;
    w.server_menu = kServers;
    w.batch_menu = {32, 64, 128, 256, 512};
    w.worker_instance_menu = {"std8", "std16", "net8", "mem8"};
    suite.push_back(std::move(w));
  }
  return suite;
}

}  // namespace

const std::vector<Workload>& workload_suite() {
  static const std::vector<Workload> kSuite = build_suite();
  return kSuite;
}

const Workload& workload_by_name(std::string_view name) {
  const auto& suite = workload_suite();
  const auto it = std::find_if(suite.begin(), suite.end(),
                               [&](const Workload& w) { return w.name == name; });
  if (it == suite.end())
    throw std::invalid_argument("workload_by_name: unknown workload " +
                                std::string(name));
  return *it;
}

conf::ConfigSpace build_config_space(const Workload& workload) {
  conf::ConfigSpace space;
  space.add(conf::ParamSpec::categorical("arch", {"ps", "allreduce"}));
  space.add(conf::ParamSpec::categorical("sync", {"bsp", "asp", "ssp"})
                .only_when("arch", {"ps"}));
  space.add(conf::ParamSpec::integer("staleness", 1, 16)
                .only_when("sync", {"ssp"}));
  space.add(conf::ParamSpec::int_choice("num_workers", workload.worker_menu));
  space.add(conf::ParamSpec::int_choice("num_servers", workload.server_menu)
                .only_when("arch", {"ps"}));
  space.add(
      conf::ParamSpec::int_choice("batch_per_worker", workload.batch_menu));
  space.add(conf::ParamSpec::continuous("learning_rate", workload.lr_lo,
                                        workload.lr_hi, /*log_scale=*/true));
  space.add(conf::ParamSpec::int_choice("comm_threads", {1, 2, 4, 8})
                .only_when("arch", {"ps"}));
  space.add(conf::ParamSpec::categorical("compression",
                                         {"none", "fp16", "int8", "topk"}));
  space.add(conf::ParamSpec::categorical(
      "worker_type", std::vector<std::string>(
                         workload.worker_instance_menu.begin(),
                         workload.worker_instance_menu.end())));
  return space;
}

sim::SystemConfig to_system_config(const Workload& workload,
                                   const conf::Config& config) {
  sim::SystemConfig sys;
  sys.arch = sim::arch_from_string(config.get_cat("arch"));

  sys.cluster.worker_type = config.get_cat("worker_type");
  sys.cluster.server_type = workload.server_instance;
  sys.cluster.num_workers =
      static_cast<int>(config.get_int("num_workers"));
  sys.cluster.num_servers =
      sys.arch == sim::Arch::kPs
          ? static_cast<int>(config.get_int("num_servers"))
          : 0;

  sys.job.model_bytes = workload.model_bytes;
  sys.job.flops_per_sample = workload.flops_per_sample;
  sys.job.batch_per_worker =
      static_cast<int>(config.get_int("batch_per_worker"));
  if (sys.arch == sim::Arch::kPs) {
    sys.job.sync = sim::sync_mode_from_string(config.get_cat("sync"));
    sys.job.comm_threads = static_cast<int>(config.get_int("comm_threads"));
  } else {
    sys.job.sync = sim::SyncMode::kBsp;  // collectives are synchronous
    sys.job.comm_threads = 4;
  }
  sys.job.staleness = sys.job.sync == sim::SyncMode::kSsp
                          ? static_cast<int>(config.get_int("staleness"))
                          : 0;
  sys.job.compression =
      sim::compression_from_string(config.get_cat("compression"));
  if (sys.arch == sim::Arch::kAllReduce &&
      (sys.job.compression == sim::Compression::kInt8 ||
       sys.job.compression == sim::Compression::kTopK)) {
    // Ring reduction cannot sum sparse/quantized chunks without realigning
    // them each hop; real collective stacks support fp16 only. Such configs
    // silently fall back to no compression (and pay no sample penalty).
    sys.job.compression = sim::Compression::kNone;
  }

  sys.memory.activation_bytes_per_sample =
      workload.activation_bytes_per_sample;
  return sys;
}

conf::Config default_expert_config(const Workload& workload,
                                   const conf::ConfigSpace& space) {
  conf::Config c = space.default_config();
  c.set_cat("arch", "ps");
  c.set_cat("sync", "bsp");
  const auto mid = [](const std::vector<std::int64_t>& menu) {
    return menu[menu.size() / 2];
  };
  c.set_int("num_workers", mid(workload.worker_menu));
  c.set_int("num_servers", mid(workload.server_menu));
  c.set_int("batch_per_worker", mid(workload.batch_menu));
  c.set_double("learning_rate", workload.stat.base_lr);
  c.set_int("comm_threads", 4);
  c.set_cat("compression", "none");
  c.set_cat("worker_type", workload.worker_instance_menu.front());
  space.canonicalize(c);
  space.validate(c);
  return c;
}

}  // namespace autodml::wl

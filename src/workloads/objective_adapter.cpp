#include "workloads/objective_adapter.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace autodml::wl {

namespace {

core::RunOutcome to_outcome(const EvalResult& result, Objective objective) {
  core::RunOutcome out;
  out.feasible = result.feasible;
  out.aborted = result.terminated_early;
  out.failure = result.failure;
  out.failure_kind = result.failure_kind;
  out.objective = result.objective_value(objective);
  out.spent_seconds = result.spent_seconds;
  out.usd_per_hour = result.usd_per_hour;
  return out;
}

}  // namespace

core::RunOutcome EvaluatorObjective::run(const conf::Config& config,
                                         core::RunController* controller) {
  ADML_SPAN("eval.run");
  ADML_COUNT("eval.runs", 1);
  const Objective objective = evaluator_->options().objective;
  auto run = evaluator_->start(config);
  if (run->failed() || controller == nullptr) {
    return to_outcome(run->result(), objective);
  }
  controller->on_run_start(run->usd_per_hour());
  while (auto checkpoint = run->next_checkpoint()) {
    core::RunCheckpoint cp;
    cp.wall_seconds = checkpoint->wall_seconds;
    cp.samples = checkpoint->samples;
    cp.metric = checkpoint->metric;
    if (controller->should_abort(cp)) {
      return to_outcome(run->abort(), objective);
    }
  }
  return to_outcome(run->result(), objective);
}

core::Trial to_trial(const EvalResult& result, Objective objective) {
  core::Trial trial;
  trial.config = result.config;
  trial.outcome = to_outcome(result, objective);
  return trial;
}

}  // namespace autodml::wl

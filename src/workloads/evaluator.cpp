#include "workloads/evaluator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace autodml::wl {

std::string to_string(Objective o) {
  return o == Objective::kTimeToAccuracy ? "time" : "cost";
}

double EvalResult::objective_value(Objective objective) const {
  if (!feasible || terminated_early)
    return std::numeric_limits<double>::infinity();
  return objective == Objective::kTimeToAccuracy ? tta_seconds : cost_usd;
}

// ---- TrainingRun ------------------------------------------------------------

TrainingRun::TrainingRun(Evaluator* owner, EvalResult seed_result,
                         double interval, int max_checkpoints)
    : owner_(owner),
      partial_(std::move(seed_result)),
      interval_(interval),
      max_checkpoints_(max_checkpoints) {
  if (!partial_.feasible) {
    // OOM or divergence: the run is over before the first checkpoint.
    failed_ = true;
    finished_ = true;
    owner_->charge(partial_.spent_seconds, partial_.spent_usd);
    charged_ = true;
  }
}

std::optional<Checkpoint> TrainingRun::next_checkpoint() {
  if (finished_) return std::nullopt;
  if (checkpoints_delivered_ >= max_checkpoints_) return std::nullopt;
  const double next_time = clock_ + interval_;
  const double horizon = std::min(
      partial_.tta_seconds, owner_->options().deadline_seconds);
  if (next_time >= horizon) return std::nullopt;
  clock_ = next_time;
  ++checkpoints_delivered_;
  Checkpoint cp;
  cp.wall_seconds = clock_;
  cp.samples = partial_.runtime.samples_per_second * clock_;
  cp.metric = ml::metric_at(owner_->workload().stat, cp.samples,
                            partial_.samples_needed);
  return cp;
}

EvalResult TrainingRun::abort() {
  if (charged_) return partial_;
  finished_ = true;
  charged_ = true;
  EvalResult out = partial_;
  out.terminated_early = true;
  out.spent_seconds += clock_;  // provisioning overhead already included
  out.spent_usd += clock_ / 3600.0 * out.usd_per_hour;
  owner_->charge(out.spent_seconds, out.spent_usd);
  partial_ = out;
  return out;
}

EvalResult TrainingRun::result() {
  if (charged_) return partial_;
  finished_ = true;
  charged_ = true;
  EvalResult out = partial_;
  out.spent_seconds += out.tta_seconds;
  out.spent_usd += out.cost_usd;
  owner_->apply_deadline(out);
  owner_->charge(out.spent_seconds, out.spent_usd);
  partial_ = out;
  return out;
}

// ---- Evaluator --------------------------------------------------------------

Evaluator::Evaluator(const Workload& workload, std::uint64_t seed,
                     EvaluatorOptions options)
    : workload_(workload),
      space_(build_config_space(workload)),
      options_(options),
      seed_(seed) {}

EvalResult Evaluator::run_once(const conf::Config& config, util::Rng& rng,
                               double noise_sigma, bool inject_faults) const {
  space_.validate(config);
  EvalResult out;
  out.config = config;

  const sim::SystemConfig sys = to_system_config(workload_, config);
  sim::SystemSimOptions sim_options;
  if (inject_faults) sim_options.faults = options_.faults;
  const sim::SystemPerformance perf =
      sim::evaluate_system(sys, rng, sim_options);
  out.usd_per_hour = perf.usd_per_hour;
  out.spent_seconds = options_.provisioning_overhead_seconds;
  out.spent_usd = options_.provisioning_overhead_seconds / 3600.0 *
                  perf.usd_per_hour;

  if (!perf.feasible) {
    out.feasible = false;
    out.failure = perf.failure;
    out.failure_kind = core::classify_failure_text(perf.failure);
    return out;
  }
  out.runtime = perf.runtime;

  ml::StatModelParams stat = workload_.stat;
  stat.eval_noise_sigma = noise_sigma;
  const double batch = ml::effective_batch(
      sys.job.sync, sys.cluster.num_workers, sys.job.batch_per_worker);
  const double staleness = ml::staleness_updates(
      sys.job.sync, perf.runtime.mean_staleness, sys.cluster.num_workers);
  const ml::StatOutcome stat_out = ml::samples_to_target(
      stat, batch, staleness, config.get_double("learning_rate"),
      sys.job.compression, rng);

  if (stat_out.diverged) {
    out.feasible = false;
    out.failure = "diverged";
    out.failure_kind = core::FailureKind::kDiverged;
    out.spent_seconds += options_.divergence_detection_seconds;
    out.spent_usd += options_.divergence_detection_seconds / 3600.0 *
                     perf.usd_per_hour;
    return out;
  }

  out.feasible = true;
  out.samples_needed = stat_out.samples_to_target;
  out.tta_seconds = stat_out.samples_to_target /
                    perf.runtime.samples_per_second;
  out.cost_usd = out.tta_seconds / 3600.0 * perf.usd_per_hour;

  // Whole-job kills (spot reclamation of the whole allocation, infra
  // outages): the job dies at a random point of its full duration and the
  // attempt must be restarted from scratch. Transient by definition — the
  // EvalSupervisor retries these; the feasibility model never sees them.
  if (inject_faults && options_.faults.job_kill_rate_per_hour > 0.0) {
    const double t_kill =
        rng.exponential(options_.faults.job_kill_rate_per_hour / 3600.0);
    if (t_kill < out.tta_seconds) {
      out.feasible = false;
      out.failure_kind = core::FailureKind::kInfraCrash;
      out.failure = "transient infra failure killed the job at t=" +
                    std::to_string(t_kill) + "s";
      out.spent_seconds += t_kill;
      out.spent_usd += t_kill / 3600.0 * perf.usd_per_hour;
      out.tta_seconds = 0.0;
      out.cost_usd = 0.0;
      out.samples_needed = 0.0;
      return out;
    }
  }
  return out;
}

void Evaluator::apply_deadline(EvalResult& result) const {
  if (!result.feasible || result.terminated_early) return;
  if (result.tta_seconds <= options_.deadline_seconds) return;
  // SLO violation: the run is killed at the deadline, paying for the
  // cluster time up to it. (Checkpoints still streamed before this point,
  // so an early-termination policy can kill the run even sooner.)
  result.feasible = false;
  result.failure = "deadline exceeded";
  result.failure_kind = core::FailureKind::kDeadlineExceeded;
  result.spent_seconds = options_.provisioning_overhead_seconds +
                         options_.deadline_seconds;
  result.spent_usd = result.spent_seconds / 3600.0 * result.usd_per_hour;
}

EvalResult Evaluator::evaluate(const conf::Config& config) {
  auto run = start(config);
  return run->result();
}

std::unique_ptr<TrainingRun> Evaluator::start(const conf::Config& config) {
  // Per-run deterministic stream: master seed + run index.
  std::uint64_t mix = seed_ ^ (0x9e3779b97f4a7c15ULL * (run_counter_ + 1));
  ++run_counter_;
  util::Rng rng(util::splitmix64(mix));
  const double noise = options_.eval_noise_sigma_override >= 0.0
                           ? options_.eval_noise_sigma_override
                           : workload_.stat.eval_noise_sigma;
  EvalResult seed_result = run_once(config, rng, noise,
                                    /*inject_faults=*/true);

  // Checkpoint cadence: fine-grained for short runs, bounded count overall.
  double interval = options_.checkpoint_interval_seconds;
  if (seed_result.feasible) {
    interval = std::max(interval, seed_result.tta_seconds /
                                      options_.max_checkpoints_per_run);
  }
  return std::unique_ptr<TrainingRun>(new TrainingRun(
      this, std::move(seed_result), interval, options_.max_checkpoints_per_run));
}

EvalResult Evaluator::evaluate_ground_truth(const conf::Config& config) const {
  util::Rng rng(0xd1ce5badULL ^ seed_);
  EvalResult result = run_once(config, rng, /*noise_sigma=*/0.0,
                               /*inject_faults=*/false);
  apply_deadline(result);
  return result;
}

}  // namespace autodml::wl

// The black-box objective the tuner optimizes.
//
// Evaluating a configuration means "run the training job like that and see
// how long (or how many dollars) it takes to reach the target metric". The
// Evaluator composes the discrete-event system simulator (throughput,
// feasibility) with the statistical-efficiency model (samples needed) into
// checkpointed TrainingRuns:
//
//   auto run = evaluator.start(config);
//   while (auto cp = run->next_checkpoint()) {
//     if (tuner_says_hopeless(*cp)) { obs = run->abort(); break; }
//   }
//   if (!obs) obs = run->result();
//
// Every simulated second consumed — including aborted and failed runs — is
// charged to the evaluator's search-cost ledger; experiment R-F4 reads this
// ledger to quantify what early termination saves. Failure modes the tuner
// must cope with: OOM (instant, cheap), divergence (detected after a short
// burn-in), and per-run noise (repeat evaluations disagree).
#pragma once

#include <limits>
#include <memory>
#include <optional>
#include <string>

#include "config/config_space.h"
#include "core/failure.h"
#include "ml/convergence.h"
#include "workloads/workload.h"

namespace autodml::wl {

enum class Objective { kTimeToAccuracy, kCostToAccuracy };

std::string to_string(Objective o);

struct EvalResult {
  conf::Config config;
  bool feasible = false;
  /// Structured failure classification; the string below is detail only.
  core::FailureKind failure_kind = core::FailureKind::kNone;
  std::string failure;  // "worker OOM...", "diverged", "" when fine
  bool terminated_early = false;

  double tta_seconds = 0.0;  // valid when feasible && !terminated_early
  double cost_usd = 0.0;     // ditto
  double usd_per_hour = 0.0;

  double spent_seconds = 0.0;  // simulated time actually consumed
  double spent_usd = 0.0;

  sim::RuntimeStats runtime;
  double samples_needed = 0.0;

  /// Scalar the tuner minimizes; +infinity for failed or aborted runs.
  double objective_value(Objective objective) const;
};

struct Checkpoint {
  double wall_seconds = 0.0;
  double samples = 0.0;
  double metric = 0.0;
};

struct EvaluatorOptions {
  Objective objective = Objective::kTimeToAccuracy;
  double checkpoint_interval_seconds = 60.0;
  int max_checkpoints_per_run = 64;
  double provisioning_overhead_seconds = 120.0;  // cluster spin-up, charged
  double divergence_detection_seconds = 300.0;   // burn-in before the blowup
  /// Override the per-run statistical noise (negative = workload default).
  double eval_noise_sigma_override = -1.0;
  /// SLO: runs whose time-to-accuracy exceeds this are failures ("deadline
  /// exceeded", killed at the deadline and charged for it). Lets the tuner
  /// minimize cost subject to a latency constraint — the constraint region
  /// is learned by the feasibility model like any other failure mode.
  double deadline_seconds = std::numeric_limits<double>::infinity();
  /// Transient-fault environment. Runtime faults (crashes, stragglers,
  /// degraded networks) reduce measured throughput inside the simulation;
  /// the whole-job kill rate terminates evaluation attempts mid-run with a
  /// transient failure — the case EvalSupervisor exists to retry. Each
  /// attempt draws fresh fault randomness from its per-run stream, and
  /// ground-truth evaluations are always fault-free.
  sim::FaultSpec faults;
};

class Evaluator;

/// One in-flight training run, streaming checkpoints until the target
/// metric is reached or the caller aborts.
class TrainingRun {
 public:
  /// True when the run failed before producing any checkpoint (OOM or
  /// divergence); result() is already final in that case.
  bool failed() const { return failed_; }

  /// Next checkpoint, or nullopt when the run has reached the target (or
  /// failed). Never returns more than max_checkpoints_per_run checkpoints;
  /// the final stretch is folded into result().
  std::optional<Checkpoint> next_checkpoint();

  /// Abort at the last delivered checkpoint; charges only time spent so far.
  EvalResult abort();

  /// Final result; runs to completion if checkpoints were not exhausted.
  EvalResult result();

  /// Dollar rate of the provisioned cluster (available immediately).
  double usd_per_hour() const { return partial_.usd_per_hour; }

 private:
  friend class Evaluator;
  TrainingRun(Evaluator* owner, EvalResult seed_result, double interval,
              int max_checkpoints);

  Evaluator* owner_;
  EvalResult partial_;
  double interval_ = 0.0;
  int max_checkpoints_ = 0;
  int checkpoints_delivered_ = 0;
  double clock_ = 0.0;
  bool finished_ = false;
  bool failed_ = false;
  bool charged_ = false;
};

class Evaluator {
 public:
  Evaluator(const Workload& workload, std::uint64_t seed,
            EvaluatorOptions options = {});

  const Workload& workload() const { return workload_; }
  const conf::ConfigSpace& space() const { return space_; }
  const EvaluatorOptions& options() const { return options_; }

  /// Full (never aborted) evaluation; charges the whole run.
  EvalResult evaluate(const conf::Config& config);

  /// Checkpoint-streaming evaluation for early-termination policies.
  std::unique_ptr<TrainingRun> start(const conf::Config& config);

  /// Noise-free, fixed-seed evaluation for computing oracles and ground
  /// truth in benches. NOT charged to the search-cost ledger.
  EvalResult evaluate_ground_truth(const conf::Config& config) const;

  // Search-cost ledger.
  double total_spent_seconds() const { return spent_seconds_; }
  double total_spent_usd() const { return spent_usd_; }
  std::size_t num_runs() const { return run_counter_; }

  /// Charge supervision overhead (retry backoff waits) to the ledger.
  /// Waiting burns wall-clock search time but no cluster dollars.
  void charge_overhead(double seconds, double usd) { charge(seconds, usd); }

  /// Journal replay: advance the per-run seed stream without evaluating,
  /// so a resumed session's later runs see the same randomness an
  /// uninterrupted session would have.
  void skip_run() { ++run_counter_; }

 private:
  friend class TrainingRun;

  /// Simulate + convergence-model one run; does not touch the ledger.
  /// `inject_faults` gates the transient-fault environment (ground truth
  /// runs with it off).
  EvalResult run_once(const conf::Config& config, util::Rng& rng,
                      double noise_sigma, bool inject_faults) const;

  /// Convert a completed run that misses the SLO into a deadline failure.
  void apply_deadline(EvalResult& result) const;

  void charge(double seconds, double usd) {
    spent_seconds_ += seconds;
    spent_usd_ += usd;
  }

  Workload workload_;
  conf::ConfigSpace space_;
  EvaluatorOptions options_;
  std::uint64_t seed_;
  std::size_t run_counter_ = 0;
  double spent_seconds_ = 0.0;
  double spent_usd_ = 0.0;
};

}  // namespace autodml::wl

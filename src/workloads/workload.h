// Workload suite: six distributed-training jobs with distinct bottlenecks.
//
// Each workload bundles (a) the resource profile that drives the simulator
// (model size, FLOPs per sample, activation footprint), (b) the statistical-
// efficiency constants that drive convergence, and (c) the menus that bind
// the generic configuration space (which worker shapes are sensible, batch
// menu, etc.). The suite is chosen so different knobs dominate per workload:
// embedding-heavy jobs are communication-bound (PS + compression + many
// servers win), vision jobs are compute-bound (GPU shapes + big effective
// batch win), tiny convex jobs are latency-bound. A tuner that only gets one
// of these shapes right is overfit; the benches sweep all of them.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "config/config_space.h"
#include "ml/convergence.h"
#include "sim/system_sim.h"

namespace autodml::wl {

struct Workload {
  std::string name;
  std::string description;

  // Resource profile.
  double model_bytes = 0.0;
  double flops_per_sample = 0.0;
  double activation_bytes_per_sample = 0.0;

  // Statistical-efficiency constants.
  ml::StatModelParams stat;

  // Space menus.
  std::vector<std::int64_t> worker_menu;
  std::vector<std::int64_t> server_menu;
  std::vector<std::int64_t> batch_menu;
  std::vector<std::string> worker_instance_menu;
  std::string server_instance = "mem8";
  double lr_lo = 1e-3;
  double lr_hi = 3.0;
};

/// The fixed six-workload suite used in every experiment.
const std::vector<Workload>& workload_suite();
const Workload& workload_by_name(std::string_view name);

/// Builds the mixed conditional configuration space for a workload:
///   arch {ps, allreduce}; sync {bsp, asp, ssp} (PS only);
///   staleness 1..16 (SSP only); num_workers / num_servers / batch menus;
///   learning_rate (log); comm_threads (PS only); compression; worker_type.
conf::ConfigSpace build_config_space(const Workload& workload);

/// Translate one configuration into the simulator's system description.
sim::SystemConfig to_system_config(const Workload& workload,
                                   const conf::Config& config);

/// A sensible-looking hand default (what a practitioner might start from):
/// PS/BSP, mid worker count, mid batch, base learning rate, no compression.
conf::Config default_expert_config(const Workload& workload,
                                   const conf::ConfigSpace& space);

}  // namespace autodml::wl

// Resilient evaluation supervisor: retries transient failures so the tuner
// sees the environment it would face on real clusters — evaluations that
// sometimes die through no fault of the configuration.
//
// The supervisor wraps an Evaluator and owns the retry loop:
//
//   - Transient failures (spot preemption, infra crashes) are retried with
//     capped exponential backoff plus jitter, up to a configurable attempt
//     budget. Deterministic failures (OOM, divergence, deadline) are the
//     configuration's fault and are never retried.
//   - Every attempt — failed ones included — and every backoff wait is
//     charged to the evaluator's search-cost ledger, so experiments measure
//     the true price of operating under faults.
//   - A per-attempt timeout converts runs that exceed it into a
//     deterministic kEvalTimeout failure (a hung evaluation tells you
//     something about the configuration; retrying it would hang again).
//
// SupervisedObjective adapts the supervisor to the tuner's black-box
// interface, reporting attempt counts and structured failure kinds so the
// feasibility surrogate can exclude transient noise.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/tuner_types.h"
#include "util/annotations.h"
#include "util/rng.h"
#include "workloads/evaluator.h"

namespace autodml::wl {

struct RetryPolicy {
  /// Total attempts per evaluation (1 = no retries).
  int max_attempts = 3;
  /// Backoff before retry k (1-based) is
  ///   min(cap, base * multiplier^(k-1)) * jitter,  jitter ~ U[1-j, 1+j].
  double backoff_base_seconds = 30.0;
  double backoff_multiplier = 2.0;
  double backoff_cap_seconds = 600.0;
  double jitter_fraction = 0.25;
  /// Attempts whose simulated wall clock exceeds this are aborted and
  /// classified kEvalTimeout (deterministic: not retried).
  double attempt_timeout_seconds = std::numeric_limits<double>::infinity();
};

/// Mean backoff (before jitter) ahead of retry `retry_index` (1-based).
double backoff_mean_seconds(const RetryPolicy& policy, int retry_index);

struct SupervisedOutcome {
  /// Result of the final attempt (success, or the failure that ended it).
  EvalResult result;
  int attempts = 0;
  /// Total backoff waited across retries (charged to the ledger).
  double backoff_seconds = 0.0;
  /// Ledger cost of the whole evaluation: every attempt plus backoff.
  double total_spent_seconds = 0.0;
  double total_spent_usd = 0.0;
  /// Failure kind of each attempt (kNone for a successful final attempt).
  std::vector<core::FailureKind> attempt_kinds;
};

class EvalSupervisor {
 public:
  /// The evaluator must outlive the supervisor. `seed` drives only the
  /// backoff jitter (a per-evaluation stream derived from it), never the
  /// evaluations themselves.
  EvalSupervisor(Evaluator& evaluator, RetryPolicy policy, std::uint64_t seed);

  /// Run one supervised evaluation. `controller` (may be null) streams
  /// checkpoints of each attempt; a controller abort ends the evaluation
  /// immediately (early termination is a verdict, not a failure).
  ///
  /// The retry/jitter counter is mutex-guarded, so concurrent callers get
  /// distinct jitter streams; the wrapped Evaluator itself is NOT
  /// thread-safe, so concurrent evaluate() additionally requires one
  /// evaluator per caller (the per-session layout the tuning service
  /// uses) or external serialization.
  SupervisedOutcome evaluate(const conf::Config& config,
                             core::RunController* controller = nullptr)
      ADML_EXCLUDES(mu_);

  /// Journal replay: advance the per-evaluation jitter stream without
  /// evaluating (pair with Evaluator::skip_run for the attempts).
  void skip_evaluation() ADML_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    ++eval_counter_;
  }

  const RetryPolicy& policy() const { return policy_; }
  Evaluator& evaluator() { return *evaluator_; }
  std::size_t num_evaluations() const ADML_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return eval_counter_;
  }

 private:
  EvalResult run_attempt(const conf::Config& config,
                         core::RunController* controller);

  Evaluator* evaluator_;
  RetryPolicy policy_;
  std::uint64_t seed_;
  mutable util::Mutex mu_;
  /// Evaluations started so far; also the jitter-stream index of the next
  /// evaluation.
  std::size_t eval_counter_ ADML_GUARDED_BY(mu_) = 0;
};

/// Tuner adapter running every evaluation through an EvalSupervisor.
/// Mirrors EvaluatorObjective but reports attempts and aggregate cost.
class SupervisedObjective final : public core::ObjectiveFunction {
 public:
  /// The supervisor must outlive the adapter.
  explicit SupervisedObjective(EvalSupervisor& supervisor)
      : supervisor_(&supervisor) {}

  const conf::ConfigSpace& space() const override {
    return supervisor_->evaluator().space();
  }

  double target_metric() const override {
    return supervisor_->evaluator().workload().stat.target_metric;
  }

  bool objective_is_cost() const override {
    return supervisor_->evaluator().options().objective ==
           Objective::kCostToAccuracy;
  }

  core::RunOutcome run(const conf::Config& config,
                       core::RunController* controller) override;

  void notify_replayed(const core::Trial& trial) override;

  EvalSupervisor& supervisor() { return *supervisor_; }

 private:
  EvalSupervisor* supervisor_;
};

}  // namespace autodml::wl

// Tuning-session persistence.
//
// Serializes trial histories to JSON so a tuning session can be resumed or
// used to warm-start a later one (possibly in another process, possibly on
// a sibling workload). Configurations are stored by parameter *name and
// value*, not by encoded position, so a saved session survives reordering
// of parameters as long as names and kinds are stable; loading validates
// every value against the target space.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/tuner_types.h"

namespace autodml::core {

/// Trials -> JSON document (an object with a "trials" array).
std::string trials_to_json(std::span<const Trial> trials);

/// Parse back against `space`. Throws std::invalid_argument on malformed
/// documents, unknown parameters, or out-of-range values.
std::vector<Trial> trials_from_json(std::string_view json,
                                    const conf::ConfigSpace& space);

/// File helpers; throw std::runtime_error on I/O failure.
void save_trials(const std::string& path, std::span<const Trial> trials);
std::vector<Trial> load_trials(const std::string& path,
                               const conf::ConfigSpace& space);

}  // namespace autodml::core

// Tuning-session persistence and the crash-safe trial journal.
//
// Two on-disk forms share one trial record schema:
//
//   - Session files ("autodml.trials.v1"): a pretty-printed JSON document
//     with a "trials" array, written atomically (temp file + fsync +
//     rename) so a crash mid-save never truncates a session. Used for
//     warm-starting later sessions, possibly on sibling workloads.
//
//   - Trial journals ("autodml.journal.v1"): line-delimited JSON, one
//     fsynced record per evaluated trial, appended as the tuner runs. A
//     tuning process killed mid-run resumes from its journal: every
//     journaled trial is replayed instead of re-evaluated, and because the
//     whole pipeline is deterministic the continuation reaches the same
//     final incumbent as an uninterrupted run. A torn final line (the
//     record being written at the instant of death) is tolerated; corrupt
//     interior lines are not.
//
// Configurations are stored by parameter *name and value*, not by encoded
// position, so a saved session survives reordering of parameters as long
// as names and kinds are stable; loading validates every value against the
// target space. Doubles are serialized with %.17g and round-trip exactly —
// journal replay depends on this.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/tuner_types.h"
#include "util/annotations.h"
#include "util/fs.h"
#include "util/json.h"

namespace autodml::core {

/// One trial <-> one JSON object (shared by sessions and journals).
util::JsonValue trial_to_json(const Trial& trial);
Trial trial_from_json(const util::JsonValue& value,
                      const conf::ConfigSpace& space);

/// Trials -> JSON document (an object with a "trials" array).
std::string trials_to_json(std::span<const Trial> trials);

/// Parse back against `space`. Throws std::invalid_argument on malformed
/// documents, unknown parameters, or out-of-range values — always with
/// enough context (trial index, field name) to identify the bad record.
std::vector<Trial> trials_from_json(std::string_view json,
                                    const conf::ConfigSpace& space);

/// File helpers; throw std::runtime_error on I/O failure. Saving is atomic:
/// a crash mid-save leaves the previous file contents intact.
void save_trials(const std::string& path, std::span<const Trial> trials);
std::vector<Trial> load_trials(const std::string& path,
                               const conf::ConfigSpace& space);

// ---- Trial journal ---------------------------------------------------------

struct JournalHeader {
  std::uint64_t seed = 0;          // tuner seed the journal was written with
  std::size_t num_params = 0;      // space shape sanity check
};

struct LoadedJournal {
  JournalHeader header;
  std::vector<Trial> trials;
  bool torn_tail = false;  // last line was torn by a crash and was skipped
  /// The final record duplicated its predecessor byte-for-byte (a crash
  /// between a durable append and the tuner acting on it makes a restart
  /// re-append the same trial); the duplicate was dropped during replay.
  bool deduped_tail = false;
};

/// Append-only journal writer. Every append is fsynced before returning,
/// so the journal never lags the tuner by more than the record in flight.
///
/// Thread-safe: appends from concurrent sessions sharing one journal are
/// serialized under an internal mutex, so records never interleave
/// mid-line (the durability contract is per whole record). Record *order*
/// across threads is scheduling-dependent; replay tolerates any order
/// because trials are keyed by content, not position.
///
/// Single-writer contract *across instances*: the mutex covers one
/// TrialJournal object, not the path. Two live instances on the same
/// path (two sessions, or two processes) would write whole records but
/// from divergent proposal sequences, which replay rejects as a
/// proposal-index gap or config mismatch instead of silently merging.
/// The service layer enforces one live owner per path at admission
/// (SessionManager's journal registry, typed error "journal-in-use");
/// the CLI relies on one tuner per --journal invocation.
class TrialJournal {
 public:
  /// Opens `path` for appending; writes the header line first when the
  /// file is new or empty.
  TrialJournal(const std::string& path, const JournalHeader& header);

  void append(const Trial& trial) ADML_EXCLUDES(mu_);

  std::string path() const ADML_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return appender_.path();
  }

 private:
  mutable util::Mutex mu_;
  util::DurableAppender appender_ ADML_GUARDED_BY(mu_);
};

/// Load a journal for resumption. Returns an empty trial list when the
/// file does not exist. Throws std::invalid_argument on a corrupt header
/// or interior record; a torn final line is skipped and flagged instead.
LoadedJournal load_journal(const std::string& path,
                           const conf::ConfigSpace& space);

/// Serialize a complete journal (header + one line per trial). Used with
/// util::write_file_atomic to repair a journal whose tail was torn.
std::string dump_journal(const JournalHeader& header,
                         std::span<const Trial> trials);

}  // namespace autodml::core

#include "core/acquisition.h"

#include <cmath>
#include <stdexcept>

namespace autodml::core {

namespace {
constexpr double kSqrt2 = 1.41421356237309504880;
constexpr double kSqrt2Pi = 2.50662827463100050242;
constexpr double kMinSigma = 1e-12;
}  // namespace

AcquisitionKind acquisition_from_string(std::string_view s) {
  if (s == "ei") return AcquisitionKind::kEi;
  if (s == "logei") return AcquisitionKind::kLogEi;
  if (s == "ucb") return AcquisitionKind::kUcb;
  if (s == "pi") return AcquisitionKind::kPi;
  if (s == "eipercost") return AcquisitionKind::kEiPerCost;
  throw std::invalid_argument("unknown acquisition: " + std::string(s));
}

std::string to_string(AcquisitionKind k) {
  switch (k) {
    case AcquisitionKind::kEi:
      return "ei";
    case AcquisitionKind::kLogEi:
      return "logei";
    case AcquisitionKind::kUcb:
      return "ucb";
    case AcquisitionKind::kPi:
      return "pi";
    case AcquisitionKind::kEiPerCost:
      return "eipercost";
  }
  return "?";
}

double normal_pdf(double z) {
  return std::exp(-0.5 * z * z) / kSqrt2Pi;
}

double normal_cdf(double z) { return 0.5 * std::erfc(-z / kSqrt2); }

double log_normal_cdf(double z) {
  if (z > -8.0) {
    // erfc is accurate here; guard against log(0) anyway.
    const double phi = normal_cdf(z);
    if (phi > 0.0) return std::log(phi);
  }
  // Asymptotic expansion of the Mills ratio for the deep lower tail:
  // Phi(z) ~ phi(z)/(-z) * (1 - 1/z^2 + 3/z^4).
  const double z2 = z * z;
  return -0.5 * z2 - std::log(-z * kSqrt2Pi) +
         std::log1p(-1.0 / z2 + 3.0 / (z2 * z2));
}

double expected_improvement(double mean, double variance, double best) {
  const double sigma = std::sqrt(std::max(0.0, variance));
  if (sigma < kMinSigma) return std::max(0.0, best - mean);
  const double z = (best - mean) / sigma;
  return (best - mean) * normal_cdf(z) + sigma * normal_pdf(z);
}

double log_expected_improvement(double mean, double variance, double best) {
  const double sigma = std::sqrt(std::max(0.0, variance));
  if (sigma < kMinSigma) {
    const double imp = best - mean;
    return imp > 0.0 ? std::log(imp) : -1e100;
  }
  const double z = (best - mean) / sigma;
  // EI = sigma * (z Phi(z) + phi(z)). For z >= -6 compute directly; deeper
  // in the tail use the expansion EI ~ sigma phi(z) / z^2 (Mills ratio).
  if (z > -6.0) {
    const double inner = z * normal_cdf(z) + normal_pdf(z);
    return std::log(sigma) + std::log(std::max(inner, 1e-300));
  }
  return std::log(sigma) - 0.5 * z * z - std::log(kSqrt2Pi) -
         2.0 * std::log(-z);
}

double ucb_score(double mean, double variance, double beta) {
  return -(mean - beta * std::sqrt(std::max(0.0, variance)));
}

double probability_of_improvement(double mean, double variance, double best) {
  const double sigma = std::sqrt(std::max(0.0, variance));
  if (sigma < kMinSigma) return mean < best ? 1.0 : 0.0;
  return normal_cdf((best - mean) / sigma);
}

double score_acquisition(AcquisitionKind kind, const AcquisitionInputs& in) {
  switch (kind) {
    case AcquisitionKind::kEi:
      return in.prob_feasible *
             expected_improvement(in.mean, in.variance, in.incumbent);
    case AcquisitionKind::kLogEi:
      return log_expected_improvement(in.mean, in.variance, in.incumbent) +
             std::log(std::max(in.prob_feasible, 1e-12));
    case AcquisitionKind::kUcb:
      // UCB is sign-indefinite, so feasibility enters as an additive
      // penalty rather than a multiplier (a multiplier would *reward*
      // infeasibility whenever the score is negative).
      return ucb_score(in.mean, in.variance, in.ucb_beta) -
             10.0 * (1.0 - in.prob_feasible);
    case AcquisitionKind::kPi:
      return in.prob_feasible *
             probability_of_improvement(in.mean, in.variance, in.incumbent);
    case AcquisitionKind::kEiPerCost:
      // EI per unit predicted cost, in log space for stability.
      return log_expected_improvement(in.mean, in.variance, in.incumbent) +
             std::log(std::max(in.prob_feasible, 1e-12)) - in.log_cost;
  }
  return 0.0;
}

}  // namespace autodml::core

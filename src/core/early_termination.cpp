#include "core/early_termination.h"

#include <algorithm>
#include <cmath>

#include "ml/curve_fit.h"

namespace autodml::core {

EarlyTerminationPolicy::EarlyTerminationPolicy(EarlyTermOptions options,
                                               double incumbent_objective)
    : options_(options), incumbent_(incumbent_objective) {}

void EarlyTerminationPolicy::on_run_start(double usd_per_hour) {
  usd_per_hour_ = usd_per_hour;
  // Attempt boundary (see RunController::on_run_start): every verdict
  // accumulated against the previous attempt resets here. The confirmation
  // streak must be re-earned — inherited, it could kill a fresh retry at
  // its very first checkpoint. The streamed curve resets with it: a
  // restarted attempt replays the same configuration's learning curve from
  // wall-clock zero, so its samples are *replicates* of the old points,
  // not a continuation — keeping them would violate the curve fitter's
  // strictly-increasing-samples precondition and leave every later fit
  // failing (a hopeless retry could then never be killed at all).
  hopeless_streak_ = 0;
  last_projection_ = std::numeric_limits<double>::infinity();
  samples_.clear();
  metrics_.clear();
  times_.clear();
}

bool EarlyTerminationPolicy::should_abort(const RunCheckpoint& checkpoint) {
  if (!options_.enabled) return false;
  samples_.push_back(checkpoint.samples);
  metrics_.push_back(checkpoint.metric);
  times_.push_back(checkpoint.wall_seconds);

  if (!std::isfinite(incumbent_)) return false;  // nothing to beat yet
  if (static_cast<int>(samples_.size()) < options_.min_checkpoints)
    return false;

  const ml::CurveFitResult fit = ml::fit_learning_curve(samples_, metrics_);
  if (!fit.ok) {
    hopeless_streak_ = 0;
    return false;
  }

  const double needed_samples =
      ml::predict_samples_to_reach(fit, options_.target_metric);
  double projected;
  if (!std::isfinite(needed_samples)) {
    // Fitted ceiling below target: the run would never get there. Still
    // demand the confirmation streak — early fits are unreliable.
    projected = std::numeric_limits<double>::infinity();
  } else {
    // Convert samples to wall time through the measured processing rate.
    const double rate = samples_.back() / std::max(1e-9, times_.back());
    projected = needed_samples / rate * options_.optimism;
    if (options_.objective_is_cost) {
      projected = projected / 3600.0 * usd_per_hour_;
    }
  }
  last_projection_ = projected;

  if (projected > options_.kill_factor * incumbent_) {
    ++hopeless_streak_;
  } else {
    hopeless_streak_ = 0;
  }
  return hopeless_streak_ >= options_.confirmations;
}

}  // namespace autodml::core

// Early termination of hopeless training runs.
//
// Evaluating one distributed-training configuration can cost hours of
// (simulated) cluster time. Most candidates are not going to beat the
// incumbent, and that is usually visible long before the target metric is
// reached: the learning curve flattens too low or climbs too slowly. This
// policy fits a saturating power law to the checkpoints seen so far
// (ml::fit_learning_curve), extrapolates the time (or dollars) the run
// still needs, discounts it by an optimism factor to stay conservative
// under noisy fits, and kills the run after `confirmations` consecutive
// checkpoints agree it cannot beat kill_factor x incumbent.
// Experiment R-F4 measures the search-cost saving; the accompanying test
// suite checks it never kills a run that would have become the incumbent
// by more than the configured margin.
#pragma once

#include <limits>
#include <vector>

#include "core/tuner_types.h"

namespace autodml::core {

struct EarlyTermOptions {
  bool enabled = true;
  int min_checkpoints = 6;    // never judge earlier than this
  int confirmations = 2;      // consecutive hopeless verdicts required
  double kill_factor = 2.0;   // hopeless = projected > factor * incumbent
  double optimism = 0.7;      // multiply projection (guards noisy fits)
  double target_metric = 0.0; // metric the run must reach (set per workload)
  bool objective_is_cost = false;  // convert projected time to dollars
};

class EarlyTerminationPolicy final : public RunController {
 public:
  /// `incumbent_objective` is the current best (seconds or dollars,
  /// matching objective_is_cost); +infinity disables killing.
  EarlyTerminationPolicy(EarlyTermOptions options,
                         double incumbent_objective);

  void on_run_start(double usd_per_hour) override;
  bool should_abort(const RunCheckpoint& checkpoint) override;

  /// Projection from the latest fit (optimism-discounted, the value the
  /// kill decision compares); +infinity when unknown/unreachable.
  double last_projection() const { return last_projection_; }

  /// Same projection without the optimism discount — the unbiased estimate
  /// of where the run would have ended, used for censored imputation.
  double last_projection_unbiased() const {
    return last_projection_ / options_.optimism;
  }

 private:
  EarlyTermOptions options_;
  double incumbent_;
  double usd_per_hour_ = 0.0;
  int hopeless_streak_ = 0;
  double last_projection_ = std::numeric_limits<double>::infinity();
  std::vector<double> samples_;
  std::vector<double> metrics_;
  std::vector<double> times_;
};

}  // namespace autodml::core

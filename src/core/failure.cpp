#include "core/failure.h"

#include <stdexcept>

namespace autodml::core {

bool is_transient(FailureKind kind) {
  return kind == FailureKind::kPreempted || kind == FailureKind::kInfraCrash;
}

std::string to_string(FailureKind kind) {
  switch (kind) {
    case FailureKind::kNone: return "none";
    case FailureKind::kOom: return "oom";
    case FailureKind::kDiverged: return "diverged";
    case FailureKind::kDeadlineExceeded: return "deadline-exceeded";
    case FailureKind::kNoThroughput: return "no-throughput";
    case FailureKind::kEvalTimeout: return "eval-timeout";
    case FailureKind::kPreempted: return "preempted";
    case FailureKind::kInfraCrash: return "infra-crash";
    case FailureKind::kUnknown: return "unknown";
  }
  return "unknown";
}

FailureKind failure_kind_from_string(std::string_view name) {
  for (FailureKind kind :
       {FailureKind::kNone, FailureKind::kOom, FailureKind::kDiverged,
        FailureKind::kDeadlineExceeded, FailureKind::kNoThroughput,
        FailureKind::kEvalTimeout, FailureKind::kPreempted,
        FailureKind::kInfraCrash, FailureKind::kUnknown}) {
    if (to_string(kind) == name) return kind;
  }
  throw std::invalid_argument("failure_kind_from_string: unknown kind '" +
                              std::string(name) + "'");
}

FailureKind classify_failure_text(std::string_view text) {
  if (text.empty()) return FailureKind::kNone;
  if (text.find("OOM") != std::string_view::npos) return FailureKind::kOom;
  if (text.find("diverged") != std::string_view::npos)
    return FailureKind::kDiverged;
  if (text.find("deadline") != std::string_view::npos)
    return FailureKind::kDeadlineExceeded;
  if (text.find("no throughput") != std::string_view::npos)
    return FailureKind::kNoThroughput;
  if (text.find("timeout") != std::string_view::npos)
    return FailureKind::kEvalTimeout;
  if (text.find("preempt") != std::string_view::npos)
    return FailureKind::kPreempted;
  if (text.find("infra") != std::string_view::npos)
    return FailureKind::kInfraCrash;
  return FailureKind::kUnknown;
}

}  // namespace autodml::core

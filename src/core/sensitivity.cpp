#include "core/sensitivity.h"

#include <algorithm>
#include <stdexcept>

#include "core/surrogate.h"
#include "util/stats.h"

namespace autodml::core {

std::vector<ParamImportance> ard_param_importance(
    const conf::ConfigSpace& space, std::span<const double> relevance) {
  if (relevance.size() != space.encoded_dimension())
    throw std::invalid_argument("ard_param_importance: dimension mismatch");

  std::vector<ParamImportance> out;
  out.reserve(space.num_params());
  std::size_t pos = 0;
  double total = 0.0;
  for (std::size_t i = 0; i < space.num_params(); ++i) {
    const auto& p = space.param(i);
    const std::size_t width = p.encoded_width();
    double v = 0.0;
    for (std::size_t j = 0; j < width; ++j) {
      v = std::max(v, relevance[pos + j]);
    }
    pos += width;
    out.push_back({p.name(), v});
    total += v;
  }
  if (total > 0.0) {
    for (auto& pi : out) pi.importance /= total;
  }
  std::sort(out.begin(), out.end(),
            [](const ParamImportance& a, const ParamImportance& b) {
              return a.importance > b.importance;
            });
  return out;
}

std::vector<ParamImportance> variance_importance(
    const SurrogateModel& surrogate, const conf::ConfigSpace& space,
    util::Rng& rng, int outer, int inner) {
  if (!surrogate.ready())
    throw std::logic_error("variance_importance: surrogate not ready");
  if (outer < 2 || inner < 1)
    throw std::invalid_argument("variance_importance: bad sample counts");

  const auto f = [&](const conf::Config& c) { return surrogate.score(c).mean; };

  // Total variance over the space.
  std::vector<double> all;
  all.reserve(static_cast<std::size_t>(outer * inner));
  for (int i = 0; i < outer * inner; ++i) {
    all.push_back(f(space.sample_uniform(rng)));
  }
  const double total_var = util::variance(all);

  std::vector<ParamImportance> out;
  out.reserve(space.num_params());
  for (std::size_t p = 0; p < space.num_params(); ++p) {
    std::vector<double> conditional_means;
    conditional_means.reserve(static_cast<std::size_t>(outer));
    for (int o = 0; o < outer; ++o) {
      // Conditioning value for param p, drawn uniformly.
      const conf::Config donor = space.sample_uniform(rng);
      double acc = 0.0;
      for (int i = 0; i < inner; ++i) {
        conf::Config c = space.sample_uniform(rng);
        c.set_value_at(p, donor.value_at(p));
        space.canonicalize(c);
        acc += f(c);
      }
      conditional_means.push_back(acc / static_cast<double>(inner));
    }
    const double share =
        total_var > 1e-12 ? util::variance(conditional_means) / total_var
                          : 0.0;
    out.push_back({space.param(p).name(), std::max(0.0, share)});
  }
  std::sort(out.begin(), out.end(),
            [](const ParamImportance& a, const ParamImportance& b) {
              return a.importance > b.importance;
            });
  return out;
}

}  // namespace autodml::core

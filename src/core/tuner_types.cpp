#include "core/tuner_types.h"

#include "util/chaos.h"

namespace autodml::core {

void record_trial(TuningResult& result, Trial trial) {
  result.total_spent_seconds += trial.outcome.spent_seconds;
  if (trial.succeeded() && trial.outcome.objective < result.best_objective) {
    result.best_objective = trial.outcome.objective;
    result.best_config = trial.config;
  }
  result.trials.push_back(std::move(trial));
  result.incumbent_curve.push_back(result.best_objective);
  // The trial is journaled and folded into the incumbent; dying here must
  // leave a journal a fresh process can resume to the identical state.
  ADML_CRASH_POINT("tuner.incumbent_update");
}

}  // namespace autodml::core

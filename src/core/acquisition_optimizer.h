// Acquisition maximization over the mixed configuration space.
//
// The space is mostly discrete (menus, categoricals, conditionals), so
// gradient ascent on the acquisition is meaningless. Instead: score a large
// uniform candidate pool (global exploration) plus neighborhoods of the best
// trials so far (local exploitation), deduplicated against the history, and
// return the argmax. This is the standard recipe for CherryPick-class tuners
// and is exact enough when one real evaluation costs hours.
#pragma once

#include <optional>
#include <span>

#include "core/acquisition.h"
#include "core/surrogate.h"
#include "core/tuner_types.h"

namespace autodml::util {
class ThreadPool;
}

namespace autodml::core {

struct AcqOptimizerOptions {
  int random_candidates = 512;
  int top_k = 5;               // seed neighborhoods from the k best trials
  int neighbors_per_seed = 16;
  double neighbor_sigma = 0.12;
  double ucb_beta = 2.0;
  /// Optional worker pool for concurrent candidate scoring (not owned;
  /// nullptr = serial). Determinism contract: candidates are generated and
  /// deduplicated serially from the caller's RNG, scored concurrently into
  /// per-candidate slots, and reduced to the lowest-index argmax — the
  /// proposal is identical at any thread count, including serial.
  util::ThreadPool* pool = nullptr;
};

/// Best candidate by acquisition score, or nullopt when every candidate is
/// a duplicate of an already-evaluated configuration (caller should fall
/// back to a random sample).
std::optional<conf::Config> propose_candidate(
    const SurrogateModel& surrogate, AcquisitionKind kind,
    std::span<const Trial> history, util::Rng& rng,
    const AcqOptimizerOptions& options = {});

/// Kriging-believer fantasy for a pending evaluation at `config`: a tagged
/// placeholder trial whose objective is the model's posterior mean there
/// (the "believer" step of Ginsbourger's kriging believer), or +infinity —
/// no belief at all, the trial only contributes dedup pressure — when the
/// model is not ready. The trial carries `fantasized = true`, which
/// excludes it from feasibility/cost training, incumbent updates, and
/// neighborhood seeding (see SurrogateModel::update and Trial::succeeded).
Trial make_fantasy_trial(const SurrogateModel& model,
                         const conf::Config& config);

/// Batch (parallel) proposals via the kriging-believer heuristic: after
/// each proposal, a tagged fantasy observation at the model's posterior
/// mean is appended and the surrogate is refit, pushing subsequent
/// proposals away from the pending point. (Earlier revisions used a raw
/// constant liar at the incumbent, whose untagged `feasible = true` label
/// leaked into the feasibility GP.) Returns up to `batch_size` distinct
/// configurations (fewer if the space is exhausted). Used when `batch_size`
/// training runs can execute concurrently on separate clusters.
std::vector<conf::Config> propose_batch(
    const conf::ConfigSpace& space, SurrogateOptions surrogate_options,
    AcquisitionKind kind, std::span<const Trial> history,
    std::size_t batch_size, util::Rng& rng,
    const AcqOptimizerOptions& options = {});

}  // namespace autodml::core

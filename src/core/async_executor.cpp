#include "core/async_executor.h"

#include <stdexcept>
#include <utility>

#include "obs/trace.h"

namespace autodml::core {

AsyncEvalExecutor::AsyncEvalExecutor(std::size_t workers, bool serialize_runs)
    : serialize_runs_(serialize_runs),
      pool_(std::make_unique<util::ThreadPool>(workers < 1 ? 1 : workers)) {}

AsyncEvalExecutor::~AsyncEvalExecutor() {
  // ~ThreadPool drains the queue; every submitted task runs to completion
  // (the start gate only ever waits on tickets that are running or done, so
  // the drain cannot deadlock). Uncollected results are discarded — the
  // caller abandoning mid-pipeline is an exception path.
  results_.clear();
}

void AsyncEvalExecutor::submit(std::function<Trial()> run) {
  const std::size_t ticket = next_ticket_;
  ++next_ticket_;
  results_.push_back(pool_->submit([this, ticket, run = std::move(run)] {
    {
      util::MutexLock lock(mu_);
      while (next_to_start_ != ticket) cv_.wait(mu_);
      if (!serialize_runs_) {
        // Start order enforced, completion free to race: release the next
        // ticket before running.
        ++next_to_start_;
      }
    }
    if (!serialize_runs_) {
      cv_.notify_all();
      ADML_SPAN("tuner.async_eval");
      return run();
    }
    // Serialized mode: hold the ticket through the run, so evaluation
    // i+1 cannot touch the (non-thread-safe) objective until i is done.
    // The ticket must advance even if the objective throws, or the drain
    // in ~ThreadPool would deadlock behind the dead ticket.
    const auto release = [this] {
      {
        util::MutexLock lock(mu_);
        ++next_to_start_;
      }
      cv_.notify_all();
    };
    try {
      ADML_SPAN("tuner.async_eval");
      Trial trial = run();
      release();
      return trial;
    } catch (...) {
      release();
      throw;
    }
  }));
}

Trial AsyncEvalExecutor::next_result() {
  if (results_.empty()) {
    throw std::logic_error(
        "AsyncEvalExecutor::next_result: nothing in flight");
  }
  std::future<Trial> front = std::move(results_.front());
  results_.pop_front();
  ADML_SPAN("tuner.async_wait");
  return front.get();
}

}  // namespace autodml::core

// Acquisition functions for minimization.
//
// All functions score a candidate from its GP posterior (mean/variance on
// the *log* objective — the evaluator's objective spans decades) and the
// incumbent best (same log scale). Larger score = more attractive. log-EI is
// numerically stable where plain EI underflows (far-from-incumbent points
// late in a run), which matters once the GP is confident: the ablation
// R-F5 quantifies the difference.
#pragma once

#include <string>
#include <string_view>

namespace autodml::core {

enum class AcquisitionKind { kEi, kLogEi, kUcb, kPi, kEiPerCost };

AcquisitionKind acquisition_from_string(std::string_view s);
std::string to_string(AcquisitionKind k);

double normal_pdf(double z);
double normal_cdf(double z);
/// log(Phi(z)), stable for very negative z.
double log_normal_cdf(double z);

/// Expected improvement over `best` when minimizing; 0 when var == 0 and
/// mean >= best.
double expected_improvement(double mean, double variance, double best);

/// log(EI), computed in log space (never -inf for positive variance).
double log_expected_improvement(double mean, double variance, double best);

/// Lower-confidence-bound score: -(mean - beta * sigma); maximize.
double ucb_score(double mean, double variance, double beta);

/// Probability of improvement Phi((best - mean)/sigma).
double probability_of_improvement(double mean, double variance, double best);

struct AcquisitionInputs {
  double mean = 0.0;       // posterior mean (log objective)
  double variance = 0.0;   // posterior variance
  double incumbent = 0.0;  // best observed (log objective)
  double prob_feasible = 1.0;
  double log_cost = 0.0;   // predicted log evaluation cost (kEiPerCost)
  double ucb_beta = 2.0;
};

/// Dispatch; every kind is multiplied by prob_feasible (in log space for
/// kLogEi). Higher is better.
double score_acquisition(AcquisitionKind kind, const AcquisitionInputs& in);

}  // namespace autodml::core

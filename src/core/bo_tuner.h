// The AutoDML tuner: Bayesian optimization over distributed-ML system
// configurations. This is the paper's primary contribution.
//
// Loop structure:
//   1. Space-filling initial design (Latin hypercube by default), evaluated
//      to completion — the model needs uncensored observations to anchor.
//   2. Repeat until the evaluation or simulated-time budget is exhausted:
//      fit the surrogate (objective + feasibility + cost GPs), maximize the
//      acquisition over a mixed candidate pool, evaluate the winner under
//      the early-termination policy (hopeless runs are killed from their
//      learning curve), record the trial.
// Warm-start trials (R-F9) are folded into the surrogate but are not
// charged against the budget or reported in the result's trial list.
//
// Crash safety: with `journal_path` set, every evaluated trial is appended
// to a fsynced line-delimited journal before the loop proceeds. A process
// killed mid-tune resumes by pointing a new tuner (same seed, same options)
// at the same journal: journaled trials are *replayed* — folded into the
// result, the budget, and the surrogate without re-evaluating, while the
// objective advances its deterministic per-run state via notify_replayed —
// so the continuation is bit-identical to an uninterrupted run.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "core/acquisition_optimizer.h"
#include "core/early_termination.h"
#include "core/session_io.h"
#include "core/surrogate.h"
#include "core/tuner_types.h"
#include "util/thread_pool.h"

namespace autodml::core {

enum class InitialDesign { kLatinHypercube, kHalton, kUniform };

struct BoOptions {
  int initial_design_size = 8;
  InitialDesign initial_design = InitialDesign::kLatinHypercube;
  AcquisitionKind acquisition = AcquisitionKind::kLogEi;
  int max_evaluations = 30;
  double max_spent_seconds = std::numeric_limits<double>::infinity();
  /// Wall-clock deadline for tune() in *real* seconds (max_spent_seconds is
  /// simulated evaluation time). When the deadline passes, the loop stops
  /// proposing after the in-flight trial: everything finished is already in
  /// the fsynced journal, so the process can exit cleanly and a later run
  /// resumes where it stopped. TuningResult::wall_deadline_hit reports it.
  double max_wall_seconds = std::numeric_limits<double>::infinity();
  /// Test seam for the deadline watchdog: returns seconds elapsed since an
  /// arbitrary fixed origin. Defaults to a monotonic clock started when
  /// tune() begins.
  std::function<double()> wall_clock;
  double random_interleave_prob = 0.05;  // epsilon of pure exploration
  EarlyTermOptions early_term;  // target_metric is filled from the objective
  SurrogateOptions surrogate;
  AcqOptimizerOptions acq_optimizer;
  std::vector<Trial> warm_start;
  /// Append-only trial journal for crash-safe sessions (empty = disabled).
  /// An existing journal written with the same seed/space is resumed.
  std::string journal_path;
  /// Worker threads for acquisition-candidate scoring (1 = serial). The
  /// tuner owns the pool; proposals are bit-identical at any thread count
  /// (see AcqOptimizerOptions::pool for the determinism contract), so this
  /// only changes latency, never results.
  int acq_threads = 1;
  /// Keep up to async_q evaluations in flight on a dedicated executor pool
  /// (1 = the classic synchronous loop). Proposals made while evaluations
  /// are pending are conditioned on kriging-believer fantasies of the
  /// pending points (see make_fantasy_trial); results are ingested,
  /// journaled, and folded into the surrogate strictly in proposal order,
  /// so incumbents are bit-identical and journals byte-identical at any
  /// async_workers count. Resume requires the same async_q (like seed).
  /// Budget note: max_spent_seconds is checked at proposal time, so an
  /// async run can overshoot it by up to async_q in-flight evaluations
  /// (the synchronous loop already overshoots by one).
  int async_q = 1;
  /// Executor worker threads for async evaluation (0 = use async_q).
  /// Changes latency only, never results. Setting this with async_q == 1
  /// forces the async pipeline at depth one, which reproduces the
  /// synchronous loop's trial sequence bit for bit (tested).
  int async_workers = 0;
  std::uint64_t seed = 1;
};

class BoTuner {
 public:
  BoTuner(ObjectiveFunction& objective, BoOptions options);
  ~BoTuner();

  /// Runs the full loop. Call once.
  TuningResult tune();

  /// Surrogate after tune(); used by the sensitivity experiment.
  const SurrogateModel& surrogate() const { return surrogate_; }

  /// Trials recovered from the journal instead of evaluated (after tune()).
  std::size_t replayed_trials() const { return replay_cursor_; }

  // ---- ask/tell session mode (the service daemon's driving API) ----------
  //
  // Instead of tune() owning the loop, an external driver alternates
  // ask_next() (get a proposal to evaluate elsewhere) and tell_next()
  // (report the outcome). The op sequence fully determines the results:
  // a serial ask->tell drive is bit-identical to tune() with
  // async_workers == 1 (the forced-async depth-one pipeline), and a
  // k-outstanding drive matches async_q == k with the same interleave.
  // Results are ingested — journaled, folded into the surrogate, recorded —
  // in strict ticket order regardless of tell arrival order, exactly like
  // run_async's FIFO collection. tune() and session mode are mutually
  // exclusive on one instance.

  /// One proposal handed to an external evaluator. `incumbent` snapshots
  /// the best objective at ask time so a remote early-termination policy
  /// can race the run against it.
  struct SessionAsk {
    std::int64_t ticket = 0;
    conf::Config config;
    bool allow_early_term = false;
    double incumbent = std::numeric_limits<double>::infinity();
  };

  /// Next proposal, conditioned on history plus kriging-believer fantasies
  /// of every outstanding (asked, not yet told) ticket. Replays any pending
  /// journal records first (see drain_replay). Returns nullopt when the
  /// evaluation/spent budget cannot pay for another proposal.
  std::optional<SessionAsk> ask_next();

  /// Reports the outcome for an outstanding ticket. The trial's config is
  /// replaced by the bit-exact proposal config (client copies go through a
  /// JSON round trip); out-of-order tells are buffered and ingested once
  /// every earlier ticket has reported. Throws std::invalid_argument for an
  /// unknown or already-told ticket.
  void tell_next(std::int64_t ticket, Trial trial);

  /// Replays every journaled trial into the session (resume-by-replay),
  /// returning how many were recovered. Called implicitly by ask_next();
  /// explicit use lets a daemon restore state before serving traffic.
  std::size_t drain_replay();

  /// Live view of the session's result (incumbent, trials, curve).
  const TuningResult& session_result() const;

  /// Outstanding tickets: asked but not yet ingested.
  std::size_t session_pending() const;

  /// True once the budget is exhausted and every ticket has been told.
  bool session_done() const;

 private:
  struct Proposal;      // pending ask/tell bookkeeping (see bo_tuner.cpp)
  struct SessionState;  // ask/tell session bookkeeping (see bo_tuner.cpp)

  /// Lazily starts the session (initial design drawn on first use, matching
  /// run_async's rng order); throws after tune().
  SessionState& ensure_session();
  /// Budget gate shared by ask_next/drain_replay; mirrors run_async's
  /// can_propose (minus the wall deadline — a daemon has no tune() watchdog).
  bool session_can_propose() const;
  /// Pops the oldest outstanding proposal and ingests `trial` for it:
  /// proposal-index stamp, metrics, journal append (live results only),
  /// surrogate history, incumbent update.
  void ingest_session_front(Trial trial, bool already_journaled);

  Trial evaluate(const conf::Config& config, bool allow_early_term,
                 double incumbent);
  /// Journal-aware evaluation: replays the next journaled trial when one is
  /// pending (verifying it matches `config`), otherwise evaluates live and
  /// journals the result before returning.
  Trial next_trial(const conf::Config& config, bool allow_early_term,
                   double incumbent);
  /// Pops the next journaled trial, verifying it matches the regenerated
  /// proposal `config`, and advances the objective's replay state.
  Trial consume_replay(const conf::Config& config);
  /// The ask half of the ask/tell split: the next proposal, conditioned on
  /// the history plus kriging-believer fantasies of every pending proposal.
  /// Deterministic — all rng draws happen here, on the caller's thread.
  Proposal ask(const std::vector<conf::Config>& design,
               std::deque<Proposal>& pending, std::int64_t index,
               const TuningResult& result);
  /// The async pipeline behind tune() when async_q > 1 (or async_workers
  /// forces it): fill the executor to async_q proposals, then tell results
  /// back in strict proposal order.
  void run_async(TuningResult& result,
                 const std::function<bool()>& deadline_hit);
  std::vector<conf::Config> initial_configs();
  /// Quasi-random proposal used while the surrogate is degraded. Driven by
  /// a dedicated seed-derived Halton stream — not rng_ and not the thread
  /// pool — so fallback proposals are bit-identical across reruns and
  /// acq_threads settings.
  conf::Config fallback_config();

  ObjectiveFunction* objective_;
  BoOptions options_;
  util::Rng rng_;
  std::unique_ptr<util::ThreadPool> acq_pool_;  // when acq_threads > 1
  SurrogateModel surrogate_;
  /// Async mode only: the surrogate refit on history + pending fantasies.
  /// Kept separate from surrogate_ so fantasy beliefs never leak into the
  /// model the sensitivity analysis (and the final fit) reads.
  SurrogateModel fantasy_model_;
  std::vector<Trial> history_;  // warm start + own trials
  std::vector<Trial> replay_;  // journaled trials pending replay
  std::size_t replay_cursor_ = 0;
  std::unique_ptr<TrialJournal> journal_;
  std::size_t fallback_index_ = 0;  // Halton cursor for degraded proposals
  std::unique_ptr<SessionState> session_;  // non-null once session mode began
  bool tuned_ = false;                     // tune() ran (or is running)
};

}  // namespace autodml::core

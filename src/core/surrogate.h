// Surrogate model over the encoded configuration space.
//
// Three coupled GPs, mirroring what the paper's tuner must track:
//   - objective GP on log(objective) of successful trials — the response
//     surface spans decades, so the log transform is what makes a
//     stationary kernel plausible;
//   - feasibility GP on a 0/1 failure indicator over all *deterministic*
//     trials (OOM and divergence regions are spatially coherent, so the
//     tuner can learn to avoid paying for them; transient failures —
//     preemptions, infra crashes — are environment noise and excluded);
//   - cost GP on log(evaluation cost) of completed trials, feeding the
//     EI-per-cost acquisition (CherryPick-style cost awareness).
// Aborted runs contribute to feasibility (they did not crash) but not to
// the objective model (their final value is censored).
#pragma once

#include <memory>
#include <optional>
#include <span>

#include "config/config_space.h"
#include "core/tuner_types.h"
#include "gp/gp.h"

namespace autodml::core {

struct SurrogateOptions {
  /// Refit GP hyperparameters every k updates (1 = always). Factorization
  /// with existing hyperparameters happens on every update regardless.
  /// Between hyperopt rounds, an update that appends exactly one trial to a
  /// GP's training set takes the O(n^2) rank-1 path (incremental Cholesky
  /// append) instead of the O(n^3) refactorization.
  int hyperopt_every = 1;
  gp::GpOptions gp;
};

struct SurrogateScore {
  double mean = 0.0;          // posterior mean of log objective
  double variance = 0.0;
  double prob_feasible = 1.0;
  double log_cost = 0.0;      // posterior mean of log evaluation cost
};

class SurrogateModel {
 public:
  SurrogateModel(const conf::ConfigSpace& space, SurrogateOptions options,
                 std::uint64_t seed);

  /// Rebuild from the full trial history (idempotent).
  void update(std::span<const Trial> trials);

  /// True once at least two successful trials exist (enough to predict).
  bool ready() const { return objective_gp_ && objective_gp_->is_fitted(); }

  /// Posterior at a configuration. Requires ready().
  SurrogateScore score(const conf::Config& config) const;

  /// Best (lowest) observed log objective. Requires ready().
  double incumbent_log() const { return incumbent_log_; }

  /// ARD relevance per encoded coordinate of the objective GP (empty until
  /// ready()); used by the sensitivity experiment.
  math::Vec ard_relevance() const;

  const conf::ConfigSpace& space() const { return *space_; }

 private:
  /// Training set a GP was last fitted on; lets update() detect the
  /// append-one-trial case and take the O(n^2) incremental path.
  struct TrainCache {
    std::vector<math::Vec> xs;
    std::vector<double> ys;
  };

  void fit_or_append(std::unique_ptr<gp::GaussianProcess>& model,
                     TrainCache& cache, const std::vector<math::Vec>& xs,
                     const std::vector<double>& ys, bool full_hyperopt);

  const conf::ConfigSpace* space_;
  SurrogateOptions options_;
  util::Rng rng_;
  int updates_since_hyperopt_ = 0;

  std::unique_ptr<gp::GaussianProcess> objective_gp_;
  std::unique_ptr<gp::GaussianProcess> feasibility_gp_;
  std::unique_ptr<gp::GaussianProcess> cost_gp_;
  TrainCache objective_cache_;
  TrainCache feasibility_cache_;
  TrainCache cost_cache_;
  double incumbent_log_ = 0.0;
  double feasible_fraction_ = 1.0;
};

}  // namespace autodml::core

// Surrogate model over the encoded configuration space.
//
// Three coupled GPs, mirroring what the paper's tuner must track:
//   - objective GP on log(objective) of successful trials — the response
//     surface spans decades, so the log transform is what makes a
//     stationary kernel plausible;
//   - feasibility GP on a 0/1 failure indicator over all *deterministic*
//     trials (OOM and divergence regions are spatially coherent, so the
//     tuner can learn to avoid paying for them; transient failures —
//     preemptions, infra crashes — are environment noise and excluded);
//   - cost GP on log(evaluation cost) of completed trials, feeding the
//     EI-per-cost acquisition (CherryPick-style cost awareness).
// Aborted runs contribute to feasibility (they did not crash) but not to
// the objective model (their final value is censored).
#pragma once

#include <memory>
#include <optional>
#include <span>

#include "config/config_space.h"
#include "core/tuner_types.h"
#include "gp/gp.h"

namespace autodml::core {

enum class SurrogateBackend {
  kAuto,   // exact GP below rff_threshold points, RFF at or above it
  kExact,  // always the exact GaussianProcess
  kRff,    // always the random-Fourier-feature approximation
};

struct SurrogateOptions {
  /// Refit GP hyperparameters every k updates (1 = always). Factorization
  /// with existing hyperparameters happens on every update regardless.
  /// Between hyperopt rounds, an update that appends exactly one trial to a
  /// GP's training set takes the backend's incremental path (O(n^2) rank-1
  /// Cholesky append on the exact GP, O(nm + m^3) feature-Gram update on
  /// RFF) instead of a full refit.
  int hyperopt_every = 1;
  /// Evidence-based trigger: between scheduled rounds, a full hyperopt
  /// fires anyway when the objective model's per-point negative log
  /// marginal likelihood has degraded by more than this many nats since
  /// the last hyperopt (stale hyperparameters stop explaining the data).
  /// <= 0 disables the trigger.
  double refit_nlml_degradation = 0.1;
  /// Which regression backend serves each GP.
  SurrogateBackend backend = SurrogateBackend::kAuto;
  /// kAuto: a model switches to the RFF backend once its training set
  /// reaches this many points (full refit cost drops from O(n^3) to
  /// O(n m^2 + m^3)).
  std::size_t rff_threshold = 1024;
  /// Number of random Fourier features m for the RFF backend.
  int rff_features = 256;
  /// Graceful degradation: when a backend fit throws (non-PD Gram after
  /// the Cholesky jitter ladder is exhausted, NaN in hyperopt), the model
  /// set is rebuilt from scratch with the noise floor raised by this
  /// factor, up to `max_noise_escalations` times, before the surrogate
  /// enters degraded mode (ready() == false until a later update fits).
  double noise_escalation_factor = 100.0;
  int max_noise_escalations = 2;
  gp::GpOptions gp;
};

struct SurrogateScore {
  double mean = 0.0;          // posterior mean of log objective
  double variance = 0.0;
  double prob_feasible = 1.0;
  double log_cost = 0.0;      // posterior mean of log evaluation cost
};

class SurrogateModel {
 public:
  SurrogateModel(const conf::ConfigSpace& space, SurrogateOptions options,
                 std::uint64_t seed);

  /// Rebuild from the full trial history (idempotent).
  void update(std::span<const Trial> trials);

  /// True once at least two successful trials exist (enough to predict).
  bool ready() const { return objective_gp_ && objective_gp_->is_fitted(); }

  /// True while the model is in degraded mode: the last update() exhausted
  /// the noise-escalation ladder without producing a finite fit, so no
  /// posterior is available and the tuner should fall back to quasi-random
  /// proposals. Cleared automatically by the next successful refit.
  bool degraded() const { return degraded_; }

  /// Posterior at a configuration. Requires ready().
  SurrogateScore score(const conf::Config& config) const;

  /// Best (lowest) observed log objective. Requires ready().
  double incumbent_log() const { return incumbent_log_; }

  /// ARD relevance per encoded coordinate of the objective GP (empty until
  /// ready()); used by the sensitivity experiment.
  math::Vec ard_relevance() const;

  const conf::ConfigSpace& space() const { return *space_; }

  /// Backend currently serving the objective model ("exact"/"rff"), or
  /// nullptr before the first fit. Diagnostics/testing surface.
  const char* objective_backend() const;

 private:
  /// Training set a model was last fitted on; lets update() detect the
  /// append-one-trial case and take the incremental path.
  struct TrainCache {
    std::vector<math::Vec> xs;
    std::vector<double> ys;
  };

  void fit_or_append(std::unique_ptr<gp::Regressor>& model, TrainCache& cache,
                     const std::vector<math::Vec>& xs,
                     const std::vector<double>& ys, bool full_hyperopt,
                     std::uint64_t role_salt);

  /// Discard every fitted model and its training cache (partial state left
  /// behind by a failed fit is not trustworthy).
  void drop_models();

  const conf::ConfigSpace* space_;
  SurrogateOptions options_;
  util::Rng rng_;
  std::uint64_t seed_;
  int updates_since_hyperopt_ = 0;
  /// Objective model's per-point negative LML recorded at the last
  /// hyperopt; reference for the evidence-based refit trigger.
  double baseline_nlml_per_point_ = 0.0;
  bool baseline_valid_ = false;

  std::unique_ptr<gp::Regressor> objective_gp_;
  std::unique_ptr<gp::Regressor> feasibility_gp_;
  std::unique_ptr<gp::Regressor> cost_gp_;
  TrainCache objective_cache_;
  TrainCache feasibility_cache_;
  TrainCache cost_cache_;
  double incumbent_log_ = 0.0;
  double feasible_fraction_ = 1.0;
  bool degraded_ = false;
};

}  // namespace autodml::core

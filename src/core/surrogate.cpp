#include "core/surrogate.h"

#include <algorithm>
#include <cmath>
#include <string_view>

#include "gp/rff.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/chaos.h"
#include "util/log.h"

namespace autodml::core {

namespace {

std::unique_ptr<gp::GaussianProcess> make_gp(std::size_t dim,
                                             const gp::GpOptions& options) {
  return std::make_unique<gp::GaussianProcess>(
      std::make_unique<gp::Matern52Ard>(dim), options);
}

std::unique_ptr<gp::RffRegressor> make_rff(std::size_t dim,
                                           const SurrogateOptions& options,
                                           std::uint64_t feature_seed) {
  gp::RffOptions rff;
  rff.num_features = options.rff_features;
  rff.gp = options.gp;
  return std::make_unique<gp::RffRegressor>(
      std::make_unique<gp::Matern52Ard>(dim), rff, feature_seed);
}

}  // namespace

SurrogateModel::SurrogateModel(const conf::ConfigSpace& space,
                               SurrogateOptions options, std::uint64_t seed)
    : space_(&space), options_(options), rng_(seed), seed_(seed) {}

void SurrogateModel::update(std::span<const Trial> trials) {
  ADML_SPAN("surrogate.update");
  ADML_COUNT("surrogate.updates", 1);
  std::vector<math::Vec> ok_x, all_x, cost_x;
  std::vector<double> ok_y, feas_y, cost_y;
  std::vector<double> real_y;  // completed runs only: defines the incumbent
  for (const Trial& t : trials) {
    const math::Vec x = space_->encode(t.config);
    if (t.fantasized) {
      // Kriging-believer fantasy for a pending evaluation: a belief about
      // the objective, not an observation. It conditions the objective
      // posterior so batch proposals repel each other, but a fabricated
      // `feasible = true` label or zero-cost sample would corrupt the
      // feasibility and cost models (and a posterior mean below the best
      // real run would fake an incumbent), so everything else skips it.
      if (std::isfinite(t.outcome.objective)) {
        ok_x.push_back(x);
        ok_y.push_back(std::log(std::max(t.outcome.objective, 1e-9)));
      }
      continue;
    }
    // Transient failures (preemption, infra crash) say nothing about the
    // configuration — training on them would carve phantom infeasible
    // regions out of the search space, so they are excluded here.
    if (!t.outcome.transient_failure()) {
      all_x.push_back(x);
      feas_y.push_back(t.outcome.feasible ? 0.0 : 1.0);
    }
    if (t.succeeded()) {
      ok_x.push_back(x);
      ok_y.push_back(std::log(std::max(t.outcome.objective, 1e-9)));
      real_y.push_back(ok_y.back());
    } else if (t.outcome.aborted &&
               std::isfinite(t.outcome.projected_objective)) {
      // Censored pseudo-observation: the early-termination projection of
      // where the killed run was heading. Without this, aborted trials
      // teach the objective model nothing and the tuner re-proposes near
      // them.
      ok_x.push_back(x);
      ok_y.push_back(std::log(std::max(t.outcome.projected_objective, 1e-9)));
    }
    if (!t.outcome.aborted && t.outcome.spent_seconds > 0.0) {
      cost_x.push_back(x);
      cost_y.push_back(std::log(t.outcome.spent_seconds));
    }
  }

  const double failures =
      std::count(feas_y.begin(), feas_y.end(), 1.0);
  feasible_fraction_ =
      feas_y.empty() ? 1.0
                     : 1.0 - failures / static_cast<double>(feas_y.size());

  // Refit scheduling: a full hyperparameter optimization runs every
  // hyperopt_every updates (and always on the first fit of a model);
  // between rounds the evidence trigger below can force one early.
  ++updates_since_hyperopt_;
  const bool first_fit = !objective_gp_ || !objective_gp_->is_fitted();
  bool full_hyperopt =
      first_fit ||
      updates_since_hyperopt_ >= std::max(1, options_.hyperopt_every);

  // Chaos seam: an armed "surrogate.refit" fault makes every fit attempt
  // of this update throw, driving the escalation ladder deterministically.
  const bool injected_fault = util::chaos::fault_requested("surrogate.refit");

  // The complete (re)fit flow, evidence-based trigger included. Any
  // backend failure (non-PD Gram past the jitter ladder, NaN hyperopt)
  // surfaces here as an exception.
  const auto run_fits = [&] {
    if (injected_fault) {
      throw std::runtime_error("surrogate: injected refit fault");
    }
    fit_or_append(objective_gp_, objective_cache_, ok_x, ok_y, full_hyperopt,
                  /*role_salt=*/0);
    fit_or_append(cost_gp_, cost_cache_, cost_x, cost_y, full_hyperopt,
                  /*role_salt=*/1);
    // Feasibility model only earns its keep once failures exist; a constant
    // label vector would just burn a GP fit.
    if (failures > 0 && feas_y.size() >= 3) {
      fit_or_append(feasibility_gp_, feasibility_cache_, all_x, feas_y,
                    full_hyperopt, /*role_salt=*/2);
    } else {
      feasibility_gp_.reset();
      feasibility_cache_ = {};
    }
    // Evidence-based trigger: the per-point negative LML is memoized state
    // the incremental paths keep current, so this costs O(1). When stale
    // hyperparameters stop explaining the growing data set — degradation
    // beyond the configured budget in nats/point — a full hyperopt runs
    // now instead of waiting out the schedule.
    if (!full_hyperopt && options_.refit_nlml_degradation > 0.0 &&
        baseline_valid_ && objective_gp_ && objective_gp_->is_fitted()) {
      const double nlml_per_point =
          -objective_gp_->log_marginal_likelihood() /
          static_cast<double>(objective_gp_->num_points());
      if (nlml_per_point - baseline_nlml_per_point_ >
          options_.refit_nlml_degradation) {
        ADML_COUNT("surrogate.refit_evidence", 1);
        full_hyperopt = true;
        fit_or_append(objective_gp_, objective_cache_, ok_x, ok_y, true, 0);
        fit_or_append(cost_gp_, cost_cache_, cost_x, cost_y, true, 1);
        if (feasibility_gp_) {
          fit_or_append(feasibility_gp_, feasibility_cache_, all_x, feas_y,
                        true, 2);
        }
      }
    }
  };

  // Degradation ladder: a failed fit discards the (suspect) model set and
  // retries from scratch with the noise floor raised — more observation
  // noise absorbs the numerical pathology that broke the factorization.
  // When every escalation fails too, the surrogate parks in degraded mode
  // rather than taking the tuner down; the next update() tries again.
  bool fitted = false;
  const int max_attempts = 1 + std::max(0, options_.max_noise_escalations);
  for (int attempt = 0; attempt < max_attempts && !fitted; ++attempt) {
    try {
      run_fits();
      fitted = true;
    } catch (const std::exception& e) {
      drop_models();
      full_hyperopt = true;
      ADML_WARN << "surrogate: fit attempt " << attempt + 1 << "/"
                << max_attempts << " failed (" << e.what() << ")";
      if (attempt + 1 < max_attempts) {
        ADML_COUNT("surrogate.jitter_escalations", 1);
        options_.gp.initial_noise =
            std::min(options_.gp.noise_hi,
                     options_.gp.initial_noise *
                         options_.noise_escalation_factor);
        options_.gp.noise_lo =
            std::min(options_.gp.noise_hi,
                     options_.gp.noise_lo * options_.noise_escalation_factor);
      }
    }
  }

  // Degraded-mode transitions only: these must never touch the metrics
  // snapshot of a healthy run (the golden-run harness diffs it).
  if (!fitted && !degraded_) {
    degraded_ = true;
    ADML_COUNT("surrogate.degraded_entries", 1);
    ADML_GAUGE_SET("tuner.degraded_mode", 1);
    ADML_WARN << "surrogate: entering degraded mode (no usable posterior); "
                 "tuner falls back to quasi-random proposals";
  } else if (fitted && degraded_) {
    degraded_ = false;
    ADML_COUNT("surrogate.recoveries", 1);
    ADML_GAUGE_SET("tuner.degraded_mode", 0);
    ADML_WARN << "surrogate: recovered from degraded mode";
  }

  if (fitted && full_hyperopt) {
    updates_since_hyperopt_ = 0;
    ADML_COUNT("surrogate.hyperopt_scheduled", 1);
    if (objective_gp_ && objective_gp_->is_fitted()) {
      baseline_nlml_per_point_ =
          -objective_gp_->log_marginal_likelihood() /
          static_cast<double>(objective_gp_->num_points());
      baseline_valid_ = true;
    } else {
      baseline_valid_ = false;
    }
  } else if (fitted) {
    ADML_COUNT("surrogate.refit_skipped", 1);
  }
  ADML_GAUGE_SET("surrogate.backend",
                 objective_gp_ && std::string_view(
                                      objective_gp_->backend_name()) == "rff"
                     ? 1
                     : 0);

  if (!real_y.empty()) {
    incumbent_log_ = *std::min_element(real_y.begin(), real_y.end());
  }
  // The refreshed model set (or the decision to degrade) is now the state
  // the tuner resumes from; a crash here must be recoverable from the
  // journal alone.
  ADML_CRASH_POINT("surrogate.refit_commit");
}

void SurrogateModel::drop_models() {
  objective_gp_.reset();
  feasibility_gp_.reset();
  cost_gp_.reset();
  objective_cache_ = {};
  feasibility_cache_ = {};
  cost_cache_ = {};
  baseline_valid_ = false;
}

const char* SurrogateModel::objective_backend() const {
  return objective_gp_ ? objective_gp_->backend_name() : nullptr;
}

void SurrogateModel::fit_or_append(
    std::unique_ptr<gp::Regressor>& model, TrainCache& cache,
    const std::vector<math::Vec>& xs, const std::vector<double>& ys,
    bool full_hyperopt, std::uint64_t role_salt) {
  if (xs.size() < 2) {
    model.reset();
    cache = {};
    return;
  }
  // Backend selection. kAuto hands a model to the RFF approximation once
  // its training set crosses the threshold; a switch discards the old
  // model and fits the replacement from scratch (hyperopt included — the
  // fresh backend should not inherit a cold start).
  const bool want_rff =
      options_.backend == SurrogateBackend::kRff ||
      (options_.backend == SurrogateBackend::kAuto &&
       xs.size() >= options_.rff_threshold);
  bool switched = false;
  if (model &&
      (std::string_view(model->backend_name()) == "rff") != want_rff) {
    model.reset();
    switched = true;
    ADML_COUNT("surrogate.backend_switches", 1);
  }
  // Incremental path: unchanged hyperparameters (not a hyperopt round) and
  // the new training set is the old one plus exactly one appended row.
  // Encodings are deterministic functions of the configs, so exact
  // double-equality is the right prefix test.
  const bool appends_one =
      model && model->is_fitted() && !full_hyperopt &&
      xs.size() == cache.xs.size() + 1 &&
      std::equal(cache.xs.begin(), cache.xs.end(), xs.begin()) &&
      std::equal(cache.ys.begin(), cache.ys.end(), ys.begin());
  if (appends_one) {
    model->append_observation(xs.back(), ys.back());
  } else {
    const std::size_t dim = space_->encoded_dimension();
    math::Matrix x(xs.size(), dim);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      std::copy(xs[i].begin(), xs[i].end(), x.row(i).begin());
    }
    const bool fresh = model == nullptr;
    if (fresh) {
      if (want_rff) {
        // Spectral feature draws come from the surrogate seed and the
        // model's role, not from rng_: creating an RFF model must not
        // shift the random stream the exact path consumes, or enabling
        // the backend would perturb unrelated proposals.
        std::uint64_t state = seed_ + 0x52464600ULL + role_salt;
        model = make_rff(dim, options_, util::splitmix64(state));
      } else {
        model = make_gp(dim, options_.gp);
      }
    }
    if (full_hyperopt || switched) {
      model->fit(x, ys, rng_);
    } else {
      model->refit(x, ys);
    }
  }
  cache.xs = xs;
  cache.ys = ys;
}

SurrogateScore SurrogateModel::score(const conf::Config& config) const {
  if (!ready()) throw std::logic_error("SurrogateModel: not ready");
  const math::Vec x = space_->encode(config);
  SurrogateScore out;
  const gp::GpPrediction obj = objective_gp_->predict(x);
  out.mean = obj.mean;
  out.variance = obj.variance;
  if (feasibility_gp_ && feasibility_gp_->is_fitted()) {
    // Regression on the 0/1 label; clamp the posterior mean into a
    // probability. Cheap and well-behaved for spatially coherent failures.
    const gp::GpPrediction feas = feasibility_gp_->predict(x);
    out.prob_feasible = std::clamp(1.0 - feas.mean, 0.02, 1.0);
  } else {
    out.prob_feasible = std::clamp(feasible_fraction_, 0.02, 1.0);
  }
  if (cost_gp_ && cost_gp_->is_fitted()) {
    out.log_cost = cost_gp_->predict(x).mean;
  }
  return out;
}

math::Vec SurrogateModel::ard_relevance() const {
  if (!ready()) return {};
  const auto* ard =
      dynamic_cast<const gp::ArdKernelBase*>(&objective_gp_->kernel());
  if (ard == nullptr) return {};
  return ard->inverse_lengthscales();
}

}  // namespace autodml::core

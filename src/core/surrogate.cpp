#include "core/surrogate.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace autodml::core {

namespace {

std::unique_ptr<gp::GaussianProcess> make_gp(std::size_t dim,
                                             const gp::GpOptions& options) {
  return std::make_unique<gp::GaussianProcess>(
      std::make_unique<gp::Matern52Ard>(dim), options);
}

}  // namespace

SurrogateModel::SurrogateModel(const conf::ConfigSpace& space,
                               SurrogateOptions options, std::uint64_t seed)
    : space_(&space), options_(options), rng_(seed) {}

void SurrogateModel::update(std::span<const Trial> trials) {
  ADML_SPAN("surrogate.update");
  ADML_COUNT("surrogate.updates", 1);
  std::vector<math::Vec> ok_x, all_x, cost_x;
  std::vector<double> ok_y, feas_y, cost_y;
  std::vector<double> real_y;  // completed runs only: defines the incumbent
  for (const Trial& t : trials) {
    const math::Vec x = space_->encode(t.config);
    // Transient failures (preemption, infra crash) say nothing about the
    // configuration — training on them would carve phantom infeasible
    // regions out of the search space, so they are excluded here.
    if (!t.outcome.transient_failure()) {
      all_x.push_back(x);
      feas_y.push_back(t.outcome.feasible ? 0.0 : 1.0);
    }
    if (t.succeeded()) {
      ok_x.push_back(x);
      ok_y.push_back(std::log(std::max(t.outcome.objective, 1e-9)));
      real_y.push_back(ok_y.back());
    } else if (t.outcome.aborted &&
               std::isfinite(t.outcome.projected_objective)) {
      // Censored pseudo-observation: the early-termination projection of
      // where the killed run was heading. Without this, aborted trials
      // teach the objective model nothing and the tuner re-proposes near
      // them.
      ok_x.push_back(x);
      ok_y.push_back(std::log(std::max(t.outcome.projected_objective, 1e-9)));
    }
    if (!t.outcome.aborted && t.outcome.spent_seconds > 0.0) {
      cost_x.push_back(x);
      cost_y.push_back(std::log(t.outcome.spent_seconds));
    }
  }

  const bool full_hyperopt =
      (updates_since_hyperopt_ % std::max(1, options_.hyperopt_every)) == 0;
  ++updates_since_hyperopt_;

  fit_or_append(objective_gp_, objective_cache_, ok_x, ok_y, full_hyperopt);
  fit_or_append(cost_gp_, cost_cache_, cost_x, cost_y, full_hyperopt);

  // Feasibility model only earns its keep once failures exist; a constant
  // label vector would just burn a GP fit.
  const double failures =
      std::count(feas_y.begin(), feas_y.end(), 1.0);
  feasible_fraction_ =
      feas_y.empty() ? 1.0
                     : 1.0 - failures / static_cast<double>(feas_y.size());
  if (failures > 0 && feas_y.size() >= 3) {
    fit_or_append(feasibility_gp_, feasibility_cache_, all_x, feas_y,
                  full_hyperopt);
  } else {
    feasibility_gp_.reset();
    feasibility_cache_ = {};
  }

  if (!real_y.empty()) {
    incumbent_log_ = *std::min_element(real_y.begin(), real_y.end());
  }
}

void SurrogateModel::fit_or_append(
    std::unique_ptr<gp::GaussianProcess>& model, TrainCache& cache,
    const std::vector<math::Vec>& xs, const std::vector<double>& ys,
    bool full_hyperopt) {
  if (xs.size() < 2) {
    model.reset();
    cache = {};
    return;
  }
  // Incremental path: unchanged hyperparameters (not a hyperopt round) and
  // the new training set is the old one plus exactly one appended row.
  // Encodings are deterministic functions of the configs, so exact
  // double-equality is the right prefix test.
  const bool appends_one =
      model && model->is_fitted() && !full_hyperopt &&
      xs.size() == cache.xs.size() + 1 &&
      std::equal(cache.xs.begin(), cache.xs.end(), xs.begin()) &&
      std::equal(cache.ys.begin(), cache.ys.end(), ys.begin());
  if (appends_one) {
    model->append_observation(xs.back(), ys.back());
  } else {
    const std::size_t dim = space_->encoded_dimension();
    math::Matrix x(xs.size(), dim);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      std::copy(xs[i].begin(), xs[i].end(), x.row(i).begin());
    }
    if (!model) model = make_gp(dim, options_.gp);
    if (full_hyperopt) {
      model->fit(x, ys, rng_);
    } else {
      model->refit(x, ys);
    }
  }
  cache.xs = xs;
  cache.ys = ys;
}

SurrogateScore SurrogateModel::score(const conf::Config& config) const {
  if (!ready()) throw std::logic_error("SurrogateModel: not ready");
  const math::Vec x = space_->encode(config);
  SurrogateScore out;
  const gp::GpPrediction obj = objective_gp_->predict(x);
  out.mean = obj.mean;
  out.variance = obj.variance;
  if (feasibility_gp_ && feasibility_gp_->is_fitted()) {
    // Regression on the 0/1 label; clamp the posterior mean into a
    // probability. Cheap and well-behaved for spatially coherent failures.
    const gp::GpPrediction feas = feasibility_gp_->predict(x);
    out.prob_feasible = std::clamp(1.0 - feas.mean, 0.02, 1.0);
  } else {
    out.prob_feasible = std::clamp(feasible_fraction_, 0.02, 1.0);
  }
  if (cost_gp_ && cost_gp_->is_fitted()) {
    out.log_cost = cost_gp_->predict(x).mean;
  }
  return out;
}

math::Vec SurrogateModel::ard_relevance() const {
  if (!ready()) return {};
  const auto* ard =
      dynamic_cast<const gp::ArdKernelBase*>(&objective_gp_->kernel());
  if (ard == nullptr) return {};
  return ard->inverse_lengthscales();
}

}  // namespace autodml::core

#include "core/acquisition_optimizer.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace autodml::core {

namespace {

/// Exact-duplicate detection via the canonical encoding.
std::set<math::Vec> encode_history(const conf::ConfigSpace& space,
                                   std::span<const Trial> history) {
  std::set<math::Vec> seen;
  for (const Trial& t : history) seen.insert(space.encode(t.config));
  return seen;
}

}  // namespace

std::optional<conf::Config> propose_candidate(
    const SurrogateModel& surrogate, AcquisitionKind kind,
    std::span<const Trial> history, util::Rng& rng,
    const AcqOptimizerOptions& options) {
  const conf::ConfigSpace& space = surrogate.space();
  const std::set<math::Vec> seen = encode_history(space, history);

  std::vector<conf::Config> candidates;
  candidates.reserve(
      static_cast<std::size_t>(options.random_candidates) +
      static_cast<std::size_t>(options.top_k * options.neighbors_per_seed));
  for (int i = 0; i < options.random_candidates; ++i) {
    candidates.push_back(space.sample_uniform(rng));
  }

  // Local neighborhoods around the best successful trials.
  std::vector<const Trial*> ranked;
  for (const Trial& t : history) {
    if (t.succeeded()) ranked.push_back(&t);
  }
  std::sort(ranked.begin(), ranked.end(), [](const Trial* a, const Trial* b) {
    return a->outcome.objective < b->outcome.objective;
  });
  const std::size_t k =
      std::min<std::size_t>(ranked.size(), static_cast<std::size_t>(options.top_k));
  for (std::size_t i = 0; i < k; ++i) {
    for (int j = 0; j < options.neighbors_per_seed; ++j) {
      candidates.push_back(
          space.neighbor(ranked[i]->config, rng, options.neighbor_sigma));
    }
  }

  double best_score = -std::numeric_limits<double>::infinity();
  std::optional<conf::Config> best;
  std::set<math::Vec> pooled;  // dedup within the pool too
  for (auto& candidate : candidates) {
    math::Vec x = space.encode(candidate);
    if (seen.count(x) || !pooled.insert(std::move(x)).second) continue;
    const SurrogateScore s = surrogate.score(candidate);
    AcquisitionInputs in;
    in.mean = s.mean;
    in.variance = s.variance;
    in.incumbent = surrogate.incumbent_log();
    in.prob_feasible = s.prob_feasible;
    in.log_cost = s.log_cost;
    in.ucb_beta = options.ucb_beta;
    const double score = score_acquisition(kind, in);
    if (score > best_score) {
      best_score = score;
      best = std::move(candidate);
    }
  }
  return best;
}

std::vector<conf::Config> propose_batch(
    const conf::ConfigSpace& space, SurrogateOptions surrogate_options,
    AcquisitionKind kind, std::span<const Trial> history,
    std::size_t batch_size, util::Rng& rng,
    const AcqOptimizerOptions& options) {
  // Hyperparameters are fit once on the real history; liar refits reuse
  // them (a liar point should not distort the lengthscales).
  surrogate_options.hyperopt_every = 1 << 20;
  SurrogateModel model(space, surrogate_options, rng.split().next_u64());
  std::vector<Trial> augmented(history.begin(), history.end());

  std::vector<conf::Config> batch;
  batch.reserve(batch_size);
  for (std::size_t i = 0; i < batch_size; ++i) {
    model.update(augmented);
    std::optional<conf::Config> candidate;
    if (model.ready()) {
      candidate = propose_candidate(model, kind, augmented, rng, options);
    }
    if (!candidate) candidate = space.sample_uniform(rng);
    // The lie: pretend the pending run returned the incumbent value.
    Trial lie;
    lie.config = *candidate;
    lie.outcome.feasible = true;
    lie.outcome.objective =
        model.ready() ? std::exp(model.incumbent_log()) : 1.0;
    lie.outcome.spent_seconds = lie.outcome.objective;
    augmented.push_back(lie);
    batch.push_back(std::move(*candidate));
  }
  return batch;
}

}  // namespace autodml::core

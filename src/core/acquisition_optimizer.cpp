#include "core/acquisition_optimizer.h"

#include <algorithm>
#include <cmath>
#include <future>
#include <set>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace autodml::core {

namespace {

/// Exact-duplicate detection via the canonical encoding.
std::set<math::Vec> encode_history(const conf::ConfigSpace& space,
                                   std::span<const Trial> history) {
  std::set<math::Vec> seen;
  for (const Trial& t : history) seen.insert(space.encode(t.config));
  return seen;
}

/// Score every candidate, serially or chunked across the pool. Writes into
/// per-index slots so the result is independent of scheduling order.
std::vector<double> score_candidates(const SurrogateModel& surrogate,
                                     AcquisitionKind kind,
                                     std::span<const conf::Config> candidates,
                                     const AcqOptimizerOptions& options) {
  ADML_SPAN("acq.score");
  std::vector<double> scores(candidates.size());
  const auto score_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const SurrogateScore s = surrogate.score(candidates[i]);
      AcquisitionInputs in;
      in.mean = s.mean;
      in.variance = s.variance;
      in.incumbent = surrogate.incumbent_log();
      in.prob_feasible = s.prob_feasible;
      in.log_cost = s.log_cost;
      in.ucb_beta = options.ucb_beta;
      scores[i] = score_acquisition(kind, in);
    }
  };
  if (options.pool == nullptr || options.pool->size() < 2 ||
      candidates.size() < 2) {
    score_range(0, candidates.size());
    return scores;
  }
  // Lock discipline: the workers share no guarded state — each chunk
  // writes a disjoint index range of `scores`, and the surrogate is only
  // read — so there is deliberately no mutex here for -Wthread-safety to
  // track; the submit/join pair in util::ThreadPool is the only
  // synchronization. Oversplit relative to the thread count so a slow
  // chunk (e.g. one hitting the feasibility GP) does not serialize the
  // tail.
  const std::size_t chunks =
      std::min(candidates.size(), options.pool->size() * 4);
  const std::size_t per_chunk = (candidates.size() + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t begin = 0; begin < candidates.size(); begin += per_chunk) {
    const std::size_t end = std::min(begin + per_chunk, candidates.size());
    futures.push_back(
        options.pool->submit([&score_range, begin, end] {
          // One span per chunk, emitted from the worker thread: the trace
          // shows how candidate scoring fans out across the pool.
          ADML_SPAN("acq.score_chunk");
          score_range(begin, end);
        }));
  }
  for (auto& f : futures) f.get();
  return scores;
}

}  // namespace

std::optional<conf::Config> propose_candidate(
    const SurrogateModel& surrogate, AcquisitionKind kind,
    std::span<const Trial> history, util::Rng& rng,
    const AcqOptimizerOptions& options) {
  ADML_SPAN("acq.propose");
  const conf::ConfigSpace& space = surrogate.space();
  const std::set<math::Vec> seen = encode_history(space, history);

  std::vector<conf::Config> candidates;
  candidates.reserve(
      static_cast<std::size_t>(options.random_candidates) +
      static_cast<std::size_t>(options.top_k * options.neighbors_per_seed));
  for (int i = 0; i < options.random_candidates; ++i) {
    candidates.push_back(space.sample_uniform(rng));
  }

  // Local neighborhoods around the best successful trials.
  std::vector<const Trial*> ranked;
  for (const Trial& t : history) {
    if (t.succeeded()) ranked.push_back(&t);
  }
  std::sort(ranked.begin(), ranked.end(), [](const Trial* a, const Trial* b) {
    return a->outcome.objective < b->outcome.objective;
  });
  const std::size_t k =
      std::min<std::size_t>(ranked.size(), static_cast<std::size_t>(options.top_k));
  for (std::size_t i = 0; i < k; ++i) {
    for (int j = 0; j < options.neighbors_per_seed; ++j) {
      candidates.push_back(
          space.neighbor(ranked[i]->config, rng, options.neighbor_sigma));
    }
  }

  // Dedup serially in generation order (against the history and within the
  // pool), then score the survivors — concurrently when a pool is supplied.
  std::vector<conf::Config> unique;
  unique.reserve(candidates.size());
  std::set<math::Vec> pooled;  // dedup within the pool too
  for (auto& candidate : candidates) {
    math::Vec x = space.encode(candidate);
    if (seen.count(x) || !pooled.insert(std::move(x)).second) continue;
    unique.push_back(std::move(candidate));
  }
  ADML_COUNT("acq.candidates_generated",
             static_cast<std::int64_t>(candidates.size()));
  ADML_COUNT("acq.candidates_scored",
             static_cast<std::int64_t>(unique.size()));
  const std::vector<double> scores =
      score_candidates(surrogate, kind, unique, options);

  // Lowest-index argmax: the strict `>` keeps the earliest of tied scores,
  // matching the serial reduction regardless of thread count.
  double best_score = -std::numeric_limits<double>::infinity();
  std::optional<conf::Config> best;
  for (std::size_t i = 0; i < unique.size(); ++i) {
    if (scores[i] > best_score) {
      best_score = scores[i];
      best = std::move(unique[i]);
    }
  }
  return best;
}

Trial make_fantasy_trial(const SurrogateModel& model,
                         const conf::Config& config) {
  Trial fantasy;
  fantasy.config = config;
  fantasy.fantasized = true;
  // The outcome is a belief, never an observation: `feasible` + zero cost
  // make the trial *parse* as a completed run, but SurrogateModel::update
  // routes fantasized trials into the objective posterior only.
  fantasy.outcome.feasible = true;
  fantasy.outcome.spent_seconds = 0.0;
  if (model.ready()) {
    // Kriging believer: believe the posterior mean at the pending point.
    fantasy.outcome.objective = std::exp(model.score(config).mean);
    ADML_COUNT("acq.fantasized", 1);
  }
  // Model not ready: objective stays +infinity — no belief to condition
  // on, the fantasy only dedups the pending configuration. (The previous
  // constant-liar code fabricated an arbitrary `objective = 1.0` here.)
  return fantasy;
}

std::vector<conf::Config> propose_batch(
    const conf::ConfigSpace& space, SurrogateOptions surrogate_options,
    AcquisitionKind kind, std::span<const Trial> history,
    std::size_t batch_size, util::Rng& rng,
    const AcqOptimizerOptions& options) {
  // Hyperparameters are fit once on the real history; fantasy refits reuse
  // them (a fantasy point should not distort the lengthscales).
  surrogate_options.hyperopt_every = 1 << 20;
  SurrogateModel model(space, surrogate_options, rng.split().next_u64());
  std::vector<Trial> augmented(history.begin(), history.end());
  // Everything already evaluated or already in this batch. The uniform
  // fallback must respect it too: resubmitting an evaluated configuration
  // would waste a full (hours-long) evaluation.
  std::set<math::Vec> seen = encode_history(space, history);

  std::vector<conf::Config> batch;
  batch.reserve(batch_size);
  for (std::size_t i = 0; i < batch_size; ++i) {
    model.update(augmented);
    std::optional<conf::Config> candidate;
    if (model.ready()) {
      candidate = propose_candidate(model, kind, augmented, rng, options);
    }
    if (!candidate) {
      // Uniform fallback, rejection-sampled against `seen`. A small discrete
      // space can be genuinely exhausted; give up after a bounded number of
      // draws and return the shorter batch rather than a duplicate.
      constexpr int kFallbackDraws = 64;
      for (int attempt = 0; attempt < kFallbackDraws; ++attempt) {
        conf::Config draw = space.sample_uniform(rng);
        if (!seen.count(space.encode(draw))) {
          candidate = std::move(draw);
          break;
        }
      }
    }
    if (!candidate) break;  // space exhausted: fewer, but distinct, configs
    seen.insert(space.encode(*candidate));
    augmented.push_back(make_fantasy_trial(model, *candidate));
    batch.push_back(std::move(*candidate));
  }
  return batch;
}

}  // namespace autodml::core

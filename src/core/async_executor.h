// Asynchronous trial executor: up to q evaluations in flight on a
// util::ThreadPool, with results collected strictly in submission (proposal)
// order.
//
// The determinism contract this layer upholds:
//   - Starts are ticket-ordered. Evaluation i begins only after evaluation
//     i-1 has *started* (or, in serialized mode, finished), regardless of
//     how many workers the pool has. Objectives that claim per-run state
//     (run counters, seed-derived rng streams) therefore consume it in
//     proposal order at any worker count.
//   - Ingestion is FIFO. next_result() returns evaluation results in
//     submission order even though wall-clock completion races freely, so
//     the caller's journal appends, surrogate updates, and rng draws happen
//     in one canonical order — journals are byte-identical and incumbents
//     bit-identical across worker counts.
//   - Serialized mode (the default for ObjectiveFunction implementations,
//     see concurrent_runs_safe) additionally makes evaluation i wait for
//     i-1 to *complete*: evaluations never overlap, but they still overlap
//     with the caller's proposal work on the main thread, and a
//     concurrent-safe objective opts in to full q-way overlap.
//
// Submission order is the ticket order: submit() must be called from a
// single thread (the tuner's ask loop). A task that throws surfaces its
// exception from next_result() for the matching ticket.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>

#include "core/tuner_types.h"
#include "util/annotations.h"
#include "util/thread_pool.h"

namespace autodml::core {

class AsyncEvalExecutor {
 public:
  /// `workers` pool threads (>= 1). With `serialize_runs` the executed
  /// closures are mutually exclusive and ordered; otherwise only the start
  /// order is enforced.
  AsyncEvalExecutor(std::size_t workers, bool serialize_runs);
  ~AsyncEvalExecutor();

  AsyncEvalExecutor(const AsyncEvalExecutor&) = delete;
  AsyncEvalExecutor& operator=(const AsyncEvalExecutor&) = delete;

  /// Enqueue evaluation `run` under the next ticket. Single-producer: call
  /// from one thread only.
  void submit(std::function<Trial()> run);

  /// Blocks for — and returns — the oldest uncollected submission's result
  /// (FIFO), rethrowing the task's exception if it threw. At least one
  /// submission must be outstanding.
  Trial next_result();

  /// Submitted but not yet collected through next_result().
  std::size_t in_flight() const { return results_.size(); }

  util::ThreadPool::Stats pool_stats() const { return pool_->stats(); }

 private:
  const bool serialize_runs_;
  std::unique_ptr<util::ThreadPool> pool_;
  /// Pending results in ticket order; next_result() pops the front.
  std::deque<std::future<Trial>> results_;

  /// Start gate: a task with ticket t runs its closure only once
  /// next_to_start_ == t (and, serialized, once the previous closure
  /// finished). Tasks are enqueued in ticket order onto a FIFO pool, so the
  /// gate never deadlocks: the ticket a task waits for is always held by a
  /// task already running or already completed.
  mutable util::Mutex mu_;
  util::CondVar cv_;
  std::size_t next_ticket_ = 0;                      // producer thread only
  std::size_t next_to_start_ ADML_GUARDED_BY(mu_) = 0;
};

}  // namespace autodml::core

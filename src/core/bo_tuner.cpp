#include "core/bo_tuner.h"

#include <algorithm>
#include <cmath>

#include "analysis/space_lint.h"
#include "config/sampler.h"
#include "util/fs.h"
#include "util/log.h"

namespace autodml::core {

BoTuner::BoTuner(ObjectiveFunction& objective, BoOptions options)
    : objective_(&objective),
      options_(std::move(options)),
      rng_(options_.seed),
      surrogate_(objective.space(), options_.surrogate,
                 util::Rng(options_.seed).split().next_u64()) {
  if (options_.acq_threads > 1) {
    acq_pool_ = std::make_unique<util::ThreadPool>(
        static_cast<std::size_t>(options_.acq_threads));
    options_.acq_optimizer.pool = acq_pool_.get();
  }
  // Lint before any budget is spent: one evaluation is expensive, and a
  // broken space (dead conditional, log range crossing zero, ...) would
  // silently waste the whole run. Errors are fatal; warnings are logged.
  const analysis::LintReport report =
      analysis::SpaceLinter().lint(objective.space());
  for (const auto& d : report.diagnostics) {
    if (d.severity == analysis::Severity::kWarning) {
      ADML_WARN << "config-space lint: " << d.to_string();
    }
  }
  analysis::throw_if_errors(report, "BoTuner");
  for (const Trial& t : options_.warm_start) {
    if (t.config.size() != objective.space().num_params()) {
      throw std::invalid_argument(
          "BoTuner: warm-start trial carries " +
          std::to_string(t.config.size()) + " values but the space has " +
          std::to_string(objective.space().num_params()) +
          " parameters (stale session file?)");
    }
  }
  options_.early_term.target_metric = objective.target_metric();
  options_.early_term.objective_is_cost = objective.objective_is_cost();
  history_ = options_.warm_start;

  if (!options_.journal_path.empty()) {
    LoadedJournal loaded = load_journal(options_.journal_path,
                                        objective.space());
    if (!loaded.trials.empty() || loaded.header.num_params != 0) {
      if (loaded.header.seed != options_.seed) {
        throw std::invalid_argument(
            "BoTuner: journal " + options_.journal_path +
            " was written with seed " + std::to_string(loaded.header.seed) +
            " but this tuner is configured with seed " +
            std::to_string(options_.seed) +
            " (resume requires identical options)");
      }
      if (loaded.header.num_params != objective.space().num_params()) {
        throw std::invalid_argument(
            "BoTuner: journal " + options_.journal_path + " covers " +
            std::to_string(loaded.header.num_params) +
            " parameters but the space has " +
            std::to_string(objective.space().num_params()) +
            " (stale journal?)");
      }
      if (loaded.torn_tail) {
        // Drop the partial record from disk before appending resumes, or
        // the next append would concatenate onto the torn line.
        ADML_WARN << "journal " << options_.journal_path
                  << ": torn final record skipped (crash mid-append); the "
                     "trial will be re-evaluated";
        std::string repaired = dump_journal(loaded.header, loaded.trials);
        util::write_file_atomic(options_.journal_path, repaired);
      }
      replay_ = std::move(loaded.trials);
    }
    JournalHeader header;
    header.seed = options_.seed;
    header.num_params = objective.space().num_params();
    journal_ = std::make_unique<TrialJournal>(options_.journal_path, header);
  }
}

std::vector<conf::Config> BoTuner::initial_configs() {
  const auto n = static_cast<std::size_t>(options_.initial_design_size);
  switch (options_.initial_design) {
    case InitialDesign::kLatinHypercube:
      return conf::latin_hypercube(objective_->space(), n, rng_);
    case InitialDesign::kHalton:
      return conf::halton_sequence(objective_->space(), n, rng_);
    case InitialDesign::kUniform:
      return conf::sample_uniform_batch(objective_->space(), n, rng_);
  }
  return {};
}

Trial BoTuner::evaluate(const conf::Config& config, bool allow_early_term,
                        double incumbent) {
  Trial trial;
  trial.config = config;
  if (allow_early_term && options_.early_term.enabled) {
    EarlyTerminationPolicy policy(options_.early_term, incumbent);
    trial.outcome = objective_->run(config, &policy);
    if (trial.outcome.aborted) {
      trial.outcome.projected_objective = policy.last_projection_unbiased();
    }
  } else {
    trial.outcome = objective_->run(config, nullptr);
  }
  return trial;
}

Trial BoTuner::next_trial(const conf::Config& config, bool allow_early_term,
                          double incumbent) {
  if (replay_cursor_ < replay_.size()) {
    Trial trial = replay_[replay_cursor_];
    // The journaled config went through a JSON round trip; the regenerated
    // proposal is the bit-exact original. Verify they agree, then keep the
    // proposal so the surrogate sees identical inputs to an uninterrupted
    // run (any real divergence means the options or space changed).
    const math::Vec a = objective_->space().encode(trial.config);
    const math::Vec b = objective_->space().encode(config);
    double max_diff = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
      max_diff = std::max(max_diff, std::abs(a[i] - b[i]));
    if (a.size() != b.size() || max_diff > 1e-9) {
      throw std::runtime_error(
          "BoTuner: journal replay diverged at trial " +
          std::to_string(replay_cursor_) + " (journaled " +
          trial.config.to_string() + ", proposed " + config.to_string() +
          "); the journal was written with different options or a "
          "different space");
    }
    ++replay_cursor_;
    trial.config = config;
    objective_->notify_replayed(trial);
    return trial;
  }
  Trial trial = evaluate(config, allow_early_term, incumbent);
  if (journal_) journal_->append(trial);
  return trial;
}

TuningResult BoTuner::tune() {
  TuningResult result;
  const auto budget_left = [&] {
    return static_cast<int>(result.trials.size()) < options_.max_evaluations &&
           result.total_spent_seconds < options_.max_spent_seconds;
  };

  // Phase 1: initial design, run to completion (uncensored anchors).
  for (const conf::Config& config : initial_configs()) {
    if (!budget_left()) break;
    Trial trial = next_trial(config, /*allow_early_term=*/false,
                             result.best_objective);
    history_.push_back(trial);
    record_trial(result, std::move(trial));
  }

  // Phase 2: model-guided search.
  while (budget_left()) {
    surrogate_.update(history_);
    std::optional<conf::Config> candidate;
    const bool explore = rng_.bernoulli(options_.random_interleave_prob);
    if (surrogate_.ready() && !explore) {
      candidate = propose_candidate(surrogate_, options_.acquisition,
                                    history_, rng_, options_.acq_optimizer);
    }
    if (!candidate) {
      candidate = objective_->space().sample_uniform(rng_);
    }
    Trial trial = next_trial(*candidate, /*allow_early_term=*/true,
                             result.best_objective);
    ADML_DEBUG << "trial " << result.trials.size() << ": "
               << trial.config.to_string() << " -> "
               << (trial.succeeded() ? trial.outcome.objective : -1.0);
    history_.push_back(trial);
    record_trial(result, std::move(trial));
  }

  // Leave the surrogate fitted on everything seen (sensitivity analysis).
  surrogate_.update(history_);
  return result;
}

}  // namespace autodml::core

#include "core/bo_tuner.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "analysis/space_lint.h"
#include "config/sampler.h"
#include "core/async_executor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fs.h"
#include "util/log.h"
#include "util/stopwatch.h"

namespace autodml::core {

BoTuner::BoTuner(ObjectiveFunction& objective, BoOptions options)
    : objective_(&objective),
      options_(std::move(options)),
      rng_(options_.seed),
      surrogate_(objective.space(), options_.surrogate,
                 util::Rng(options_.seed).split().next_u64()),
      fantasy_model_(objective.space(), options_.surrogate,
                     util::Rng(options_.seed ^ 0x517cc1b727220a95ULL)
                         .split()
                         .next_u64()) {
  if (options_.async_q < 1) {
    throw std::invalid_argument("BoTuner: async_q must be >= 1 (got " +
                                std::to_string(options_.async_q) + ")");
  }
  if (options_.async_workers < 0) {
    throw std::invalid_argument("BoTuner: async_workers must be >= 0 (got " +
                                std::to_string(options_.async_workers) + ")");
  }
  if (options_.acq_threads > 1) {
    acq_pool_ = std::make_unique<util::ThreadPool>(
        static_cast<std::size_t>(options_.acq_threads));
    options_.acq_optimizer.pool = acq_pool_.get();
  }
  // Lint before any budget is spent: one evaluation is expensive, and a
  // broken space (dead conditional, log range crossing zero, ...) would
  // silently waste the whole run. Errors are fatal; warnings are logged.
  const analysis::LintReport report =
      analysis::SpaceLinter().lint(objective.space());
  for (const auto& d : report.diagnostics) {
    if (d.severity == analysis::Severity::kWarning) {
      ADML_WARN << "config-space lint: " << d.to_string();
    }
  }
  analysis::throw_if_errors(report, "BoTuner");
  for (const Trial& t : options_.warm_start) {
    if (t.config.size() != objective.space().num_params()) {
      throw std::invalid_argument(
          "BoTuner: warm-start trial carries " +
          std::to_string(t.config.size()) + " values but the space has " +
          std::to_string(objective.space().num_params()) +
          " parameters (stale session file?)");
    }
  }
  options_.early_term.target_metric = objective.target_metric();
  options_.early_term.objective_is_cost = objective.objective_is_cost();
  history_ = options_.warm_start;

  if (!options_.journal_path.empty()) {
    LoadedJournal loaded = load_journal(options_.journal_path,
                                        objective.space());
    if (!loaded.trials.empty() || loaded.header.num_params != 0) {
      if (loaded.header.seed != options_.seed) {
        throw std::invalid_argument(
            "BoTuner: journal " + options_.journal_path +
            " was written with seed " + std::to_string(loaded.header.seed) +
            " but this tuner is configured with seed " +
            std::to_string(options_.seed) +
            " (resume requires identical options)");
      }
      if (loaded.header.num_params != objective.space().num_params()) {
        throw std::invalid_argument(
            "BoTuner: journal " + options_.journal_path + " covers " +
            std::to_string(loaded.header.num_params) +
            " parameters but the space has " +
            std::to_string(objective.space().num_params()) +
            " (stale journal?)");
      }
      if (loaded.torn_tail) {
        ADML_WARN << "journal " << options_.journal_path
                  << ": torn final record skipped (crash mid-append); the "
                     "trial will be re-evaluated";
      }
      if (loaded.deduped_tail) {
        ADML_WARN << "journal " << options_.journal_path
                  << ": duplicated trailing record dropped (crash between "
                     "append and acknowledgement)";
      }
      if (loaded.torn_tail || loaded.deduped_tail) {
        // Drop the partial/duplicate record from disk before appending
        // resumes, or the next append would land after the bad line.
        std::string repaired = dump_journal(loaded.header, loaded.trials);
        util::write_file_atomic(options_.journal_path, repaired);
      }
      replay_ = std::move(loaded.trials);
    }
    JournalHeader header;
    header.seed = options_.seed;
    header.num_params = objective.space().num_params();
    journal_ = std::make_unique<TrialJournal>(options_.journal_path, header);
  }
}

std::vector<conf::Config> BoTuner::initial_configs() {
  const auto n = static_cast<std::size_t>(options_.initial_design_size);
  switch (options_.initial_design) {
    case InitialDesign::kLatinHypercube:
      return conf::latin_hypercube(objective_->space(), n, rng_);
    case InitialDesign::kHalton:
      return conf::halton_sequence(objective_->space(), n, rng_);
    case InitialDesign::kUniform:
      return conf::sample_uniform_batch(objective_->space(), n, rng_);
  }
  return {};
}

conf::Config BoTuner::fallback_config() {
  // Regenerate the scrambled-Halton stream from scratch on each call: the
  // scramble permutations are a pure function of the dedicated seed, so
  // proposal i is the same value whether the process ran straight through,
  // resumed from a journal, or used a different acq_threads. The prefix
  // recomputation is O(i) per call and i stays tiny (degraded iterations).
  util::Rng halton_rng(options_.seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<conf::Config> seq = conf::halton_sequence(
      objective_->space(), fallback_index_ + 1, halton_rng);
  ++fallback_index_;
  return seq.back();
}

Trial BoTuner::evaluate(const conf::Config& config, bool allow_early_term,
                        double incumbent) {
  Trial trial;
  trial.config = config;
  if (allow_early_term && options_.early_term.enabled) {
    EarlyTerminationPolicy policy(options_.early_term, incumbent);
    trial.outcome = objective_->run(config, &policy);
    if (trial.outcome.aborted) {
      trial.outcome.projected_objective = policy.last_projection_unbiased();
    }
  } else {
    trial.outcome = objective_->run(config, nullptr);
  }
  return trial;
}

namespace {

/// Simulated per-trial evaluation cost in hours; deterministic, so it is
/// safe for the golden-run snapshot.
constexpr double kSpentHoursBuckets[] = {0.5, 1.0, 2.0, 4.0, 8.0,
                                         16.0, 32.0, 64.0, 128.0};

}  // namespace

Trial BoTuner::consume_replay(const conf::Config& config) {
  Trial trial = replay_[replay_cursor_];
  // The journaled config went through a JSON round trip; the regenerated
  // proposal is the bit-exact original. Verify they agree, then keep the
  // proposal so the surrogate sees identical inputs to an uninterrupted
  // run (any real divergence means the options or space changed).
  const math::Vec a = objective_->space().encode(trial.config);
  const math::Vec b = objective_->space().encode(config);
  double max_diff = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    max_diff = std::max(max_diff, std::abs(a[i] - b[i]));
  if (a.size() != b.size() || max_diff > 1e-9) {
    throw std::runtime_error(
        "BoTuner: journal replay diverged at trial " +
        std::to_string(replay_cursor_) + " (journaled " +
        trial.config.to_string() + ", proposed " + config.to_string() +
        "); the journal was written with different options or a "
        "different space");
  }
  ++replay_cursor_;
  trial.config = config;
  objective_->notify_replayed(trial);
  ADML_COUNT("tuner.replayed_trials", 1);
  return trial;
}

Trial BoTuner::next_trial(const conf::Config& config, bool allow_early_term,
                          double incumbent) {
  ADML_SPAN("tuner.evaluate");
  if (replay_cursor_ < replay_.size()) return consume_replay(config);
  Trial trial = evaluate(config, allow_early_term, incumbent);
  ADML_HISTOGRAM("tuner.trial_spent_hours", kSpentHoursBuckets,
                 trial.outcome.spent_seconds / 3600.0);
  if (trial.outcome.aborted) ADML_COUNT("tuner.early_terminated", 1);
  if (journal_) {
    ADML_SPAN("tuner.journal_append");
    journal_->append(trial);
  }
  return trial;
}

/// One in-flight proposal of the ask/tell pipeline. Created on the main
/// thread by ask(); the matching evaluation runs on the executor (or was
/// replayed from the journal), and tell ingests it in index order.
struct BoTuner::Proposal {
  std::int64_t index = 0;
  conf::Config config;
  bool allow_early_term = false;
  /// Incumbent snapshot at proposal time: the freshest deterministically
  /// known best when this evaluation starts, so the early-termination
  /// policy races in-flight runs against it (and reclaims the budget of
  /// hopeless ones) without reading racy cross-thread state.
  double incumbent = std::numeric_limits<double>::infinity();
  /// Kriging-believer placeholder conditioning later asks (never trained
  /// into feasibility/cost models, never journaled).
  Trial fantasy;
  /// Journal replay: the result was recovered at submit time instead of
  /// being evaluated.
  bool replayed = false;
  Trial replayed_trial;
};

/// Ask/tell session bookkeeping. The deque of outstanding proposals plays
/// run_async's `pending` role; `told` buffers results that arrived before an
/// earlier ticket, so ingestion stays strict-FIFO whatever order a client
/// (or many client threads behind the service) reports in.
struct BoTuner::SessionState {
  bool started = false;
  std::vector<conf::Config> design;
  std::deque<Proposal> pending;
  std::int64_t next_index = 0;
  std::map<std::int64_t, Trial> told;  // buffered out-of-order tells
  TuningResult result;
};

BoTuner::~BoTuner() = default;

BoTuner::SessionState& BoTuner::ensure_session() {
  if (tuned_) {
    throw std::logic_error(
        "BoTuner: ask/tell session cannot start after tune()");
  }
  if (!session_) session_ = std::make_unique<SessionState>();
  if (!session_->started) {
    // Same rng_ draw order as run_async: the design is generated before the
    // first ask, so a session drive replays tune()'s exact stream.
    session_->design = initial_configs();
    session_->started = true;
  }
  return *session_;
}

bool BoTuner::session_can_propose() const {
  const std::size_t trials =
      session_ ? session_->result.trials.size() : 0;
  const std::size_t pending = session_ ? session_->pending.size() : 0;
  const double spent =
      session_ ? session_->result.total_spent_seconds : 0.0;
  return static_cast<int>(trials) + static_cast<int>(pending) <
             options_.max_evaluations &&
         spent < options_.max_spent_seconds;
}

void BoTuner::ingest_session_front(Trial trial, bool already_journaled) {
  SessionState& s = *session_;
  Proposal front = std::move(s.pending.front());
  s.pending.pop_front();
  // Keep the bit-exact regenerated proposal config: the caller's copy went
  // through a JSON round trip (consume_replay applies the same rule).
  trial.config = front.config;
  trial.proposal_index = front.index;
  if (!already_journaled) {
    ADML_HISTOGRAM("tuner.trial_spent_hours", kSpentHoursBuckets,
                   trial.outcome.spent_seconds / 3600.0);
    if (trial.outcome.aborted) ADML_COUNT("tuner.early_terminated", 1);
    if (journal_) {
      ADML_SPAN("tuner.journal_append");
      journal_->append(trial);
    }
  }
  ADML_DEBUG << "session trial " << s.result.trials.size() << ": "
             << trial.config.to_string() << " -> "
             << (trial.succeeded() ? trial.outcome.objective : -1.0);
  history_.push_back(trial);
  record_trial(s.result, std::move(trial));
}

std::size_t BoTuner::drain_replay() {
  SessionState& s = ensure_session();
  std::size_t drained = 0;
  while (replay_cursor_ < replay_.size() && session_can_propose() &&
         s.told.empty() && s.pending.empty()) {
    // Resume is a serial ask->ingest drive: regenerate proposal i, verify it
    // against journal record i, fold it in. Bit-identical to the original
    // run because consume_replay keeps the regenerated config and
    // notify_replayed advances the objective's deterministic state.
    Proposal p = ask(s.design, s.pending, s.next_index, s.result);
    ++s.next_index;
    Trial trial = consume_replay(p.config);
    s.pending.push_back(std::move(p));
    ingest_session_front(std::move(trial), /*already_journaled=*/true);
    ++drained;
  }
  return drained;
}

std::optional<BoTuner::SessionAsk> BoTuner::ask_next() {
  SessionState& s = ensure_session();
  if (replay_cursor_ < replay_.size()) drain_replay();
  if (!session_can_propose()) return std::nullopt;
  Proposal p = ask(s.design, s.pending, s.next_index, s.result);
  ++s.next_index;
  SessionAsk out;
  out.ticket = p.index;
  out.config = p.config;
  out.allow_early_term = p.allow_early_term && options_.early_term.enabled;
  out.incumbent = p.incumbent;
  s.pending.push_back(std::move(p));
  ADML_GAUGE_MAX("tuner.session_pending_peak",
                 static_cast<double>(s.pending.size()));
  return out;
}

void BoTuner::tell_next(std::int64_t ticket, Trial trial) {
  SessionState& s = ensure_session();
  bool outstanding = false;
  for (const Proposal& p : s.pending) {
    if (p.index == ticket) {
      outstanding = true;
      break;
    }
  }
  if (!outstanding || s.told.count(ticket) != 0) {
    throw std::invalid_argument(
        "BoTuner: tell_next ticket " + std::to_string(ticket) +
        (s.told.count(ticket) != 0 || ticket < s.next_index
             ? " was already reported"
             : " was never asked"));
  }
  s.told.emplace(ticket, std::move(trial));
  // Strict-FIFO ingestion: fold in the front ticket and everything buffered
  // contiguously behind it. Journal bytes, surrogate inputs and rng state
  // stay one canonical sequence whatever order reports arrive in.
  while (!s.pending.empty()) {
    auto it = s.told.find(s.pending.front().index);
    if (it == s.told.end()) break;
    Trial next = std::move(it->second);
    s.told.erase(it);
    ingest_session_front(std::move(next), /*already_journaled=*/false);
  }
}

const TuningResult& BoTuner::session_result() const {
  static const TuningResult kEmpty;
  return session_ ? session_->result : kEmpty;
}

std::size_t BoTuner::session_pending() const {
  return session_ ? session_->pending.size() : 0;
}

bool BoTuner::session_done() const {
  return !session_can_propose() && session_pending() == 0 &&
         (!session_ || session_->told.empty());
}

BoTuner::Proposal BoTuner::ask(const std::vector<conf::Config>& design,
                               std::deque<Proposal>& pending,
                               std::int64_t index,
                               const TuningResult& result) {
  Proposal p;
  p.index = index;
  p.incumbent = result.best_objective;
  if (index < static_cast<std::int64_t>(design.size())) {
    // Initial design: run to completion (uncensored anchors), exactly like
    // the synchronous phase 1. No model is consulted, so the fantasy below
    // carries no belief (+inf objective) and only dedups the pending point.
    p.config = design[static_cast<std::size_t>(index)];
    p.allow_early_term = false;
    p.fantasy = make_fantasy_trial(surrogate_, p.config);
    return p;
  }
  p.allow_early_term = true;
  std::optional<conf::Config> candidate;
  const SurrogateModel* model = &surrogate_;
  if (pending.empty()) {
    // Nothing in flight (async_q == 1, or the pipeline drained): identical
    // to one synchronous phase-2 iteration — same model, same rng draws.
    surrogate_.update(history_);
    const bool explore = rng_.bernoulli(options_.random_interleave_prob);
    if (surrogate_.ready() && !explore) {
      ADML_SPAN("tuner.propose");
      candidate = propose_candidate(surrogate_, options_.acquisition,
                                    history_, rng_, options_.acq_optimizer);
    }
  } else {
    // Pending evaluations: condition the proposal on the history plus the
    // kriging-believer fantasies, so the acquisition repels the pending
    // points instead of re-proposing next to them. The augmented view also
    // dedups in-flight configs (propose_candidate rejects exact repeats).
    std::vector<Trial> augmented = history_;
    augmented.reserve(history_.size() + pending.size());
    for (const Proposal& pe : pending) augmented.push_back(pe.fantasy);
    fantasy_model_.update(augmented);
    model = &fantasy_model_;
    const bool explore = rng_.bernoulli(options_.random_interleave_prob);
    if (fantasy_model_.ready() && !explore) {
      ADML_SPAN("tuner.propose");
      candidate =
          propose_candidate(fantasy_model_, options_.acquisition, augmented,
                            rng_, options_.acq_optimizer);
    }
  }
  if (!candidate && model->degraded()) {
    ADML_COUNT("tuner.fallback_proposals", 1);
    candidate = fallback_config();
  }
  if (!candidate) {
    ADML_COUNT("tuner.random_proposals", 1);
    candidate = objective_->space().sample_uniform(rng_);
  }
  p.config = std::move(*candidate);
  p.fantasy = make_fantasy_trial(*model, p.config);
  return p;
}

void BoTuner::run_async(TuningResult& result,
                        const std::function<bool()>& deadline_hit) {
  const int q = options_.async_q;
  const std::size_t workers = options_.async_workers > 0
                                  ? static_cast<std::size_t>(
                                        options_.async_workers)
                                  : static_cast<std::size_t>(q);
  // Objectives with per-run deterministic state run serialized (starts are
  // still pipelined with proposal work); a concurrent-safe objective gets
  // real q-way overlap. Either way results ingest in proposal order.
  AsyncEvalExecutor executor(workers,
                             !objective_->concurrent_runs_safe());
  const std::vector<conf::Config> design = initial_configs();
  std::deque<Proposal> pending;
  std::int64_t next_index = 0;

  // Budget gate at proposal time: everything recorded plus everything in
  // flight counts against max_evaluations, so the pipeline never proposes
  // an evaluation the budget cannot pay for.
  const auto can_propose = [&] {
    return static_cast<int>(result.trials.size()) +
               static_cast<int>(pending.size()) < options_.max_evaluations &&
           result.total_spent_seconds < options_.max_spent_seconds &&
           !deadline_hit();
  };

  while (true) {
    while (static_cast<int>(pending.size()) < q && can_propose()) {
      Proposal p = ask(design, pending, next_index, result);
      ++next_index;
      if (replay_cursor_ < replay_.size()) {
        // Recovered from the journal: no evaluation to schedule. The
        // replay state advances *here*, at submit time, so the objective's
        // per-run counters tick in proposal order relative to the live
        // evaluations submitted after this one.
        p.replayed = true;
        p.replayed_trial = consume_replay(p.config);
      } else {
        executor.submit([this, config = p.config,
                         allow_early_term = p.allow_early_term,
                         incumbent = p.incumbent] {
          return evaluate(config, allow_early_term, incumbent);
        });
      }
      pending.push_back(std::move(p));
      ADML_GAUGE_SET("tuner.in_flight",
                     static_cast<double>(executor.in_flight()));
      ADML_GAUGE_MAX("tuner.in_flight_peak",
                     static_cast<double>(executor.in_flight()));
    }
    if (pending.empty()) break;

    // Tell: ingest the oldest proposal's result. Strict FIFO — completion
    // order never reaches this thread, so journal bytes, surrogate inputs,
    // and rng state are one canonical sequence at any worker count.
    Proposal front = std::move(pending.front());
    pending.pop_front();
    Trial trial;
    if (front.replayed) {
      trial = std::move(front.replayed_trial);
      trial.proposal_index = front.index;
    } else {
      trial = executor.next_result();
      trial.proposal_index = front.index;
      ADML_HISTOGRAM("tuner.trial_spent_hours", kSpentHoursBuckets,
                     trial.outcome.spent_seconds / 3600.0);
      if (trial.outcome.aborted) ADML_COUNT("tuner.early_terminated", 1);
      if (journal_) {
        ADML_SPAN("tuner.journal_append");
        journal_->append(trial);
      }
    }
    ADML_GAUGE_SET("tuner.in_flight",
                   static_cast<double>(executor.in_flight()));
    ADML_DEBUG << "trial " << result.trials.size() << ": "
               << trial.config.to_string() << " -> "
               << (trial.succeeded() ? trial.outcome.objective : -1.0);
    history_.push_back(trial);
    record_trial(result, std::move(trial));
  }

  const util::ThreadPool::Stats stats = executor.pool_stats();
  ADML_GAUGE_SET("threadpool.eval.submitted",
                 static_cast<double>(stats.submitted));
  ADML_GAUGE_SET("threadpool.eval.completed",
                 static_cast<double>(stats.completed));
  ADML_GAUGE_MAX("threadpool.eval.peak_queue_depth",
                 static_cast<double>(stats.peak_queue_depth));
}

TuningResult BoTuner::tune() {
  ADML_SPAN("tuner.tune");
  if (session_ && session_->started) {
    throw std::logic_error("BoTuner: tune() after an ask/tell session began");
  }
  tuned_ = true;
  TuningResult result;
  util::Stopwatch wall;
  const auto wall_seconds = [&] {
    return options_.wall_clock ? options_.wall_clock()
                               : wall.elapsed_seconds();
  };
  // Deadline watchdog: checked between trials, never mid-evaluation. Every
  // finished trial is already fsynced in the journal, so hitting the
  // deadline is a clean checkpoint-and-exit, not an abort.
  const auto deadline_hit = [&] {
    if (result.wall_deadline_hit) return true;
    if (!(wall_seconds() >= options_.max_wall_seconds)) return false;
    result.wall_deadline_hit = true;
    ADML_COUNT("tuner.wall_deadline_hits", 1);
    ADML_WARN << "tuner: wall-clock deadline (" << options_.max_wall_seconds
              << "s) reached after " << result.trials.size()
              << " trials; checkpointing and stopping (journal is resumable)";
    return true;
  };
  const auto budget_left = [&] {
    return static_cast<int>(result.trials.size()) < options_.max_evaluations &&
           result.total_spent_seconds < options_.max_spent_seconds &&
           !deadline_hit();
  };

  if (options_.async_q > 1 || options_.async_workers > 0) {
    // Async pipeline: up to async_q proposals in flight, told back in
    // strict proposal order. async_workers > 0 with async_q == 1 forces
    // the pipeline at depth one, which reproduces the synchronous loop.
    run_async(result, deadline_hit);
  } else {
    // Phase 1: initial design, run to completion (uncensored anchors).
    {
      ADML_SPAN("tuner.initial_design");
      for (const conf::Config& config : initial_configs()) {
        if (!budget_left()) break;
        Trial trial = next_trial(config, /*allow_early_term=*/false,
                                 result.best_objective);
        history_.push_back(trial);
        record_trial(result, std::move(trial));
      }
    }

    // Phase 2: model-guided search.
    while (budget_left()) {
      ADML_SPAN("tuner.iteration");
      surrogate_.update(history_);
      std::optional<conf::Config> candidate;
      const bool explore = rng_.bernoulli(options_.random_interleave_prob);
      if (surrogate_.ready() && !explore) {
        ADML_SPAN("tuner.propose");
        candidate = propose_candidate(surrogate_, options_.acquisition,
                                      history_, rng_, options_.acq_optimizer);
      }
      if (!candidate && surrogate_.degraded()) {
        // Degraded surrogate: no posterior to maximize, but the run should
        // still make progress. Quasi-random coverage beats iid uniform
        // here, and the dedicated stream keeps it reproducible (see
        // fallback_config).
        ADML_COUNT("tuner.fallback_proposals", 1);
        candidate = fallback_config();
      }
      if (!candidate) {
        ADML_COUNT("tuner.random_proposals", 1);
        candidate = objective_->space().sample_uniform(rng_);
      }
      Trial trial = next_trial(*candidate, /*allow_early_term=*/true,
                               result.best_objective);
      ADML_DEBUG << "trial " << result.trials.size() << ": "
                 << trial.config.to_string() << " -> "
                 << (trial.succeeded() ? trial.outcome.objective : -1.0);
      history_.push_back(trial);
      record_trial(result, std::move(trial));
    }
  }

  // Leave the surrogate fitted on everything seen (sensitivity analysis) —
  // unless the wall deadline fired: the watchdog's contract is a prompt
  // exit, and a resumed process refits from the journal anyway.
  if (!result.wall_deadline_hit) surrogate_.update(history_);
  ADML_COUNT("tuner.trials", static_cast<std::int64_t>(result.trials.size()));
  if (result.found_feasible())
    ADML_GAUGE_SET("tuner.best_objective", result.best_objective);
  ADML_GAUGE_ADD("tuner.simulated_spent_seconds", result.total_spent_seconds);
  if (acq_pool_) {
    const util::ThreadPool::Stats stats = acq_pool_->stats();
    ADML_GAUGE_SET("threadpool.acq.submitted",
                   static_cast<double>(stats.submitted));
    ADML_GAUGE_SET("threadpool.acq.completed",
                   static_cast<double>(stats.completed));
    ADML_GAUGE_MAX("threadpool.acq.peak_queue_depth",
                   static_cast<double>(stats.peak_queue_depth));
  }
  return result;
}

}  // namespace autodml::core

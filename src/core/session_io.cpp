#include "core/session_io.h"

#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/json.h"

namespace autodml::core {

namespace {

util::JsonValue value_to_json(const conf::ParamValue& v) {
  return std::visit(
      [](const auto& x) -> util::JsonValue {
        using T = std::decay_t<decltype(x)>;
        if constexpr (std::is_same_v<T, std::int64_t>) {
          return util::JsonValue(static_cast<double>(x));
        } else if constexpr (std::is_same_v<T, double>) {
          return util::JsonValue(x);
        } else if constexpr (std::is_same_v<T, std::string>) {
          return util::JsonValue(x);
        } else {
          return util::JsonValue(x);  // bool
        }
      },
      v);
}

conf::ParamValue value_from_json(const conf::ParamSpec& spec,
                                 const util::JsonValue& v) {
  switch (spec.kind()) {
    case conf::ParamKind::kInt:
    case conf::ParamKind::kIntChoice:
      if (!v.is_number())
        throw std::invalid_argument("session: expected number for " +
                                    spec.name());
      return static_cast<std::int64_t>(v.as_number());
    case conf::ParamKind::kContinuous:
      if (!v.is_number())
        throw std::invalid_argument("session: expected number for " +
                                    spec.name());
      return v.as_number();
    case conf::ParamKind::kCategorical:
      if (!v.is_string())
        throw std::invalid_argument("session: expected string for " +
                                    spec.name());
      return v.as_string();
    case conf::ParamKind::kBool:
      if (!v.is_bool())
        throw std::invalid_argument("session: expected bool for " +
                                    spec.name());
      return v.as_bool();
  }
  throw std::logic_error("session: unreachable");
}

}  // namespace

std::string trials_to_json(std::span<const Trial> trials) {
  util::JsonArray array;
  array.reserve(trials.size());
  for (const Trial& t : trials) {
    util::JsonObject config;
    const conf::ConfigSpace* space = t.config.space();
    if (space == nullptr)
      throw std::invalid_argument("trials_to_json: unbound config");
    for (std::size_t i = 0; i < space->num_params(); ++i) {
      config.emplace(space->param(i).name(),
                     value_to_json(t.config.value_at(i)));
    }
    util::JsonObject outcome;
    outcome.emplace("feasible", util::JsonValue(t.outcome.feasible));
    outcome.emplace("aborted", util::JsonValue(t.outcome.aborted));
    outcome.emplace("failure", util::JsonValue(t.outcome.failure));
    // Infinity is not representable in JSON; null means "no objective".
    outcome.emplace("objective",
                    t.succeeded() ? util::JsonValue(t.outcome.objective)
                                  : util::JsonValue(nullptr));
    outcome.emplace("spent_seconds",
                    util::JsonValue(t.outcome.spent_seconds));
    outcome.emplace("usd_per_hour", util::JsonValue(t.outcome.usd_per_hour));

    util::JsonObject trial;
    trial.emplace("config", std::move(config));
    trial.emplace("outcome", std::move(outcome));
    array.emplace_back(std::move(trial));
  }
  util::JsonObject root;
  root.emplace("schema", util::JsonValue("autodml.trials.v1"));
  root.emplace("trials", std::move(array));
  return util::dump_json(util::JsonValue(std::move(root)), 2);
}

std::vector<Trial> trials_from_json(std::string_view json,
                                    const conf::ConfigSpace& space) {
  const util::JsonValue root = util::parse_json(json);
  if (!root.is_object() || !root.contains("trials"))
    throw std::invalid_argument("session: missing trials array");
  const auto& array = root.at("trials").as_array();

  std::vector<Trial> out;
  out.reserve(array.size());
  for (const util::JsonValue& entry : array) {
    const auto& config_obj = entry.at("config").as_object();
    conf::Config config = space.default_config();
    for (const auto& [name, value] : config_obj) {
      if (!space.contains(name))
        throw std::invalid_argument("session: unknown parameter " + name);
      const std::size_t idx = space.index_of(name);
      config.set_value_at(idx, value_from_json(space.param(idx), value));
    }
    space.canonicalize(config);
    space.validate(config);

    Trial trial;
    trial.config = std::move(config);
    const auto& outcome = entry.at("outcome");
    trial.outcome.feasible = outcome.at("feasible").as_bool();
    trial.outcome.aborted = outcome.at("aborted").as_bool();
    trial.outcome.failure = outcome.at("failure").as_string();
    trial.outcome.objective =
        outcome.at("objective").is_null()
            ? std::numeric_limits<double>::infinity()
            : outcome.at("objective").as_number();
    trial.outcome.spent_seconds = outcome.at("spent_seconds").as_number();
    trial.outcome.usd_per_hour = outcome.at("usd_per_hour").as_number();
    out.push_back(std::move(trial));
  }
  return out;
}

void save_trials(const std::string& path, std::span<const Trial> trials) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("save_trials: cannot open " + path);
  file << trials_to_json(trials) << '\n';
  if (!file) throw std::runtime_error("save_trials: write failed for " + path);
}

std::vector<Trial> load_trials(const std::string& path,
                               const conf::ConfigSpace& space) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("load_trials: cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return trials_from_json(buffer.str(), space);
}

}  // namespace autodml::core

#include "core/session_io.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace autodml::core {

namespace {

util::JsonValue value_to_json(const conf::ParamValue& v) {
  return std::visit(
      [](const auto& x) -> util::JsonValue {
        using T = std::decay_t<decltype(x)>;
        if constexpr (std::is_same_v<T, std::int64_t>) {
          return util::JsonValue(static_cast<double>(x));
        } else if constexpr (std::is_same_v<T, double>) {
          return util::JsonValue(x);
        } else if constexpr (std::is_same_v<T, std::string>) {
          return util::JsonValue(x);
        } else {
          return util::JsonValue(x);  // bool
        }
      },
      v);
}

conf::ParamValue value_from_json(const conf::ParamSpec& spec,
                                 const util::JsonValue& v) {
  switch (spec.kind()) {
    case conf::ParamKind::kInt:
    case conf::ParamKind::kIntChoice:
      if (!v.is_number())
        throw std::invalid_argument("session: expected number for " +
                                    spec.name());
      return static_cast<std::int64_t>(v.as_number());
    case conf::ParamKind::kContinuous:
      if (!v.is_number())
        throw std::invalid_argument("session: expected number for " +
                                    spec.name());
      return v.as_number();
    case conf::ParamKind::kCategorical:
      if (!v.is_string())
        throw std::invalid_argument("session: expected string for " +
                                    spec.name());
      return v.as_string();
    case conf::ParamKind::kBool:
      if (!v.is_bool())
        throw std::invalid_argument("session: expected bool for " +
                                    spec.name());
      return v.as_bool();
  }
  throw std::logic_error("session: unreachable");
}

// Defensive accessors: session files arrive from disk and may be hand
// edited or truncated, so every type mismatch must surface as
// invalid_argument with field context, never as bad_variant_access.
const util::JsonValue& require(const util::JsonValue& object,
                               std::string_view key,
                               const std::string& where) {
  if (!object.is_object() || !object.contains(key))
    throw std::invalid_argument("session: " + where + ": missing '" +
                                std::string(key) + "'");
  return object.at(key);
}

bool require_bool(const util::JsonValue& object, std::string_view key,
                  const std::string& where) {
  const util::JsonValue& v = require(object, key, where);
  if (!v.is_bool())
    throw std::invalid_argument("session: " + where + ": '" +
                                std::string(key) + "' must be a bool");
  return v.as_bool();
}

double require_number(const util::JsonValue& object, std::string_view key,
                      const std::string& where) {
  const util::JsonValue& v = require(object, key, where);
  if (!v.is_number())
    throw std::invalid_argument("session: " + where + ": '" +
                                std::string(key) + "' must be a number");
  return v.as_number();
}

std::string require_string(const util::JsonValue& object, std::string_view key,
                           const std::string& where) {
  const util::JsonValue& v = require(object, key, where);
  if (!v.is_string())
    throw std::invalid_argument("session: " + where + ": '" +
                                std::string(key) + "' must be a string");
  return v.as_string();
}

}  // namespace

util::JsonValue trial_to_json(const Trial& trial) {
  util::JsonObject config;
  const conf::ConfigSpace* space = trial.config.space();
  if (space == nullptr)
    throw std::invalid_argument("trial_to_json: unbound config");
  for (std::size_t i = 0; i < space->num_params(); ++i) {
    config.emplace(space->param(i).name(),
                   value_to_json(trial.config.value_at(i)));
  }
  util::JsonObject outcome;
  outcome.emplace("feasible", util::JsonValue(trial.outcome.feasible));
  outcome.emplace("aborted", util::JsonValue(trial.outcome.aborted));
  outcome.emplace("failure", util::JsonValue(trial.outcome.failure));
  outcome.emplace("failure_kind",
                  util::JsonValue(to_string(trial.outcome.failure_kind)));
  outcome.emplace("attempts", util::JsonValue(trial.outcome.attempts));
  // Infinity is not representable in JSON; null means "no objective".
  outcome.emplace("objective",
                  trial.succeeded() ? util::JsonValue(trial.outcome.objective)
                                    : util::JsonValue(nullptr));
  outcome.emplace("projected_objective",
                  std::isfinite(trial.outcome.projected_objective)
                      ? util::JsonValue(trial.outcome.projected_objective)
                      : util::JsonValue(nullptr));
  outcome.emplace("spent_seconds",
                  util::JsonValue(trial.outcome.spent_seconds));
  outcome.emplace("usd_per_hour",
                  util::JsonValue(trial.outcome.usd_per_hour));

  util::JsonObject out;
  out.emplace("config", std::move(config));
  out.emplace("outcome", std::move(outcome));
  // Only async sessions stamp a proposal index; the synchronous path omits
  // the field entirely so its journals stay byte-identical to pre-async
  // revisions (and resumable by them).
  if (trial.proposal_index >= 0) {
    out.emplace("proposal_index",
                util::JsonValue(static_cast<double>(trial.proposal_index)));
  }
  return util::JsonValue(std::move(out));
}

Trial trial_from_json(const util::JsonValue& value,
                      const conf::ConfigSpace& space) {
  if (!value.is_object())
    throw std::invalid_argument("session: trial record must be an object");
  const util::JsonValue& config_value = require(value, "config", "trial");
  if (!config_value.is_object())
    throw std::invalid_argument("session: trial 'config' must be an object");
  conf::Config config = space.default_config();
  for (const auto& [name, v] : config_value.as_object()) {
    if (!space.contains(name))
      throw std::invalid_argument("session: unknown parameter " + name);
    const std::size_t idx = space.index_of(name);
    config.set_value_at(idx, value_from_json(space.param(idx), v));
  }
  space.canonicalize(config);
  space.validate(config);

  Trial trial;
  trial.config = std::move(config);
  const util::JsonValue& outcome = require(value, "outcome", "trial");
  trial.outcome.feasible = require_bool(outcome, "feasible", "outcome");
  trial.outcome.aborted = require_bool(outcome, "aborted", "outcome");
  trial.outcome.failure = require_string(outcome, "failure", "outcome");
  const util::JsonValue& objective = require(outcome, "objective", "outcome");
  if (objective.is_null()) {
    trial.outcome.objective = std::numeric_limits<double>::infinity();
  } else if (objective.is_number()) {
    trial.outcome.objective = objective.as_number();
  } else {
    throw std::invalid_argument(
        "session: outcome: 'objective' must be a number or null");
  }
  trial.outcome.spent_seconds =
      require_number(outcome, "spent_seconds", "outcome");
  trial.outcome.usd_per_hour =
      require_number(outcome, "usd_per_hour", "outcome");
  // Fields introduced with the robustness subsystem; legacy records fall
  // back to classifying the free-text failure string.
  if (outcome.contains("failure_kind")) {
    trial.outcome.failure_kind =
        failure_kind_from_string(require_string(outcome, "failure_kind",
                                                "outcome"));
  } else {
    trial.outcome.failure_kind =
        trial.outcome.feasible ? FailureKind::kNone
                               : classify_failure_text(trial.outcome.failure);
  }
  if (outcome.contains("attempts")) {
    const double attempts = require_number(outcome, "attempts", "outcome");
    if (attempts < 1.0)
      throw std::invalid_argument("session: outcome: 'attempts' must be >= 1");
    trial.outcome.attempts = static_cast<int>(attempts);
  }
  if (outcome.contains("projected_objective") &&
      !outcome.at("projected_objective").is_null()) {
    trial.outcome.projected_objective =
        require_number(outcome, "projected_objective", "outcome");
  }
  if (value.contains("proposal_index")) {
    const double index = require_number(value, "proposal_index", "trial");
    if (index < 0.0)
      throw std::invalid_argument(
          "session: trial: 'proposal_index' must be >= 0");
    trial.proposal_index = static_cast<std::int64_t>(index);
  }
  return trial;
}

std::string trials_to_json(std::span<const Trial> trials) {
  util::JsonArray array;
  array.reserve(trials.size());
  for (const Trial& t : trials) array.push_back(trial_to_json(t));
  util::JsonObject root;
  root.emplace("schema", util::JsonValue("autodml.trials.v1"));
  root.emplace("trials", std::move(array));
  return util::dump_json(util::JsonValue(std::move(root)), 2);
}

std::vector<Trial> trials_from_json(std::string_view json,
                                    const conf::ConfigSpace& space) {
  const util::JsonValue root = util::parse_json(json);
  if (!root.is_object() || !root.contains("trials"))
    throw std::invalid_argument("session: missing trials array");
  if (!root.at("trials").is_array())
    throw std::invalid_argument("session: 'trials' must be an array");
  const auto& array = root.at("trials").as_array();

  std::vector<Trial> out;
  out.reserve(array.size());
  for (std::size_t i = 0; i < array.size(); ++i) {
    try {
      out.push_back(trial_from_json(array[i], space));
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("trial " + std::to_string(i) + ": " +
                                  e.what());
    }
  }
  return out;
}

void save_trials(const std::string& path, std::span<const Trial> trials) {
  util::write_file_atomic(path, trials_to_json(trials) + "\n");
}

std::vector<Trial> load_trials(const std::string& path,
                               const conf::ConfigSpace& space) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("load_trials: cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  try {
    return trials_from_json(buffer.str(), space);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(path + ": " + e.what());
  }
}

// ---- Trial journal ---------------------------------------------------------

namespace {

constexpr std::string_view kJournalSchema = "autodml.journal.v1";

std::string header_line(const JournalHeader& header) {
  util::JsonObject object;
  object.emplace("schema", util::JsonValue(std::string(kJournalSchema)));
  object.emplace("seed", util::JsonValue(static_cast<double>(header.seed)));
  object.emplace("num_params",
                 util::JsonValue(static_cast<double>(header.num_params)));
  return util::dump_json(util::JsonValue(std::move(object))) + "\n";
}

JournalHeader parse_header(const std::string& line, const std::string& path) {
  util::JsonValue value(nullptr);
  try {
    value = util::parse_json(line);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(path + ": not a trial journal (" + e.what() +
                                ")");
  }
  if (!value.is_object() || !value.contains("schema") ||
      !value.at("schema").is_string() ||
      value.at("schema").as_string() != kJournalSchema) {
    throw std::invalid_argument(path +
                                ": not a trial journal (bad header line)");
  }
  JournalHeader header;
  header.seed = static_cast<std::uint64_t>(
      require_number(value, "seed", "journal header"));
  header.num_params = static_cast<std::size_t>(
      require_number(value, "num_params", "journal header"));
  return header;
}

bool file_is_empty(const std::string& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  return !file || file.tellg() == std::streampos(0);
}

}  // namespace

TrialJournal::TrialJournal(const std::string& path,
                           const JournalHeader& header)
    : appender_(path) {
  if (file_is_empty(path)) appender_.append(header_line(header));
}

void TrialJournal::append(const Trial& trial) {
  // Serialize outside the lock (the expensive part), write under it.
  const std::string record = util::dump_json(trial_to_json(trial)) + "\n";
  util::MutexLock lock(mu_);
  appender_.append(record);
}

std::string dump_journal(const JournalHeader& header,
                         std::span<const Trial> trials) {
  std::string out = header_line(header);
  for (const Trial& t : trials)
    out += util::dump_json(trial_to_json(t)) + "\n";
  return out;
}

LoadedJournal load_journal(const std::string& path,
                           const conf::ConfigSpace& space) {
  LoadedJournal out;
  std::ifstream file(path);
  if (!file) return out;  // no journal yet: fresh session

  std::vector<std::string> lines;
  std::string line;
  while (std::getline(file, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  if (lines.empty()) return out;

  out.header = parse_header(lines.front(), path);
  // Replay is positional, so a duplicated trailing record (a restart that
  // re-evaluated and re-appended a trial whose first append was already
  // durable) would diverge the resumed proposal stream at the duplicate.
  // Records serialize deterministically, so byte-identical adjacent tail
  // lines are the same trial; drop the duplicate. Worst case (a genuine
  // repeat proposal at the tail) the trial is re-evaluated, which the
  // deterministic objective reproduces exactly.
  if (lines.size() >= 3 && lines.back() == lines[lines.size() - 2]) {
    lines.pop_back();
    out.deduped_tail = true;
  }
  for (std::size_t i = 1; i < lines.size(); ++i) {
    try {
      out.trials.push_back(trial_from_json(util::parse_json(lines[i]), space));
    } catch (const std::invalid_argument& e) {
      if (i + 1 == lines.size()) {
        // The record being written at the instant of death: skip it. Its
        // evaluation was never acted on, so re-running it is correct.
        out.torn_tail = true;
        break;
      }
      throw std::invalid_argument(path + ": corrupt journal record " +
                                  std::to_string(i) + ": " + e.what());
    }
  }
  // Out-of-order tolerance: async sessions stamp every record with its
  // proposal index, so replay order is defined by the index, not by append
  // order. (The in-tree writer ingests FIFO and appends in index order; the
  // sort is the schema's contract for any conforming writer.) A journal
  // whose records only partially carry indices is positional, like a
  // legacy journal.
  const bool all_indexed =
      !out.trials.empty() &&
      std::all_of(out.trials.begin(), out.trials.end(),
                  [](const Trial& t) { return t.proposal_index >= 0; });
  if (all_indexed) {
    std::stable_sort(out.trials.begin(), out.trials.end(),
                     [](const Trial& a, const Trial& b) {
                       return a.proposal_index < b.proposal_index;
                     });
    for (std::size_t i = 0; i < out.trials.size(); ++i) {
      if (out.trials[i].proposal_index != static_cast<std::int64_t>(i)) {
        throw std::invalid_argument(
            path + ": journal proposal indices are not contiguous (record " +
            std::to_string(i) + " carries index " +
            std::to_string(out.trials[i].proposal_index) +
            "); the journal lost a record and cannot be replayed");
      }
    }
  }
  return out;
}

}  // namespace autodml::core

// Structured evaluation-failure taxonomy.
//
// The tuner's feasibility model must learn OOM and divergence regions —
// those are properties of the configuration — but must NOT learn from spot
// preemptions or infra crashes, which are properties of the environment and
// would carve phantom infeasible holes out of the search space. The retry
// supervisor likewise retries only failures that can plausibly succeed on a
// second attempt. Both decisions key off this enum, which replaces the
// free-text failure string as the source of truth (the string survives as a
// human-readable detail).
#pragma once

#include <string>
#include <string_view>

namespace autodml::core {

enum class FailureKind {
  kNone,              // the run succeeded
  // Deterministic failures: caused by the configuration, will repeat, and
  // train the feasibility surrogate.
  kOom,               // worker or server out of memory
  kDiverged,          // learning rate / staleness blew the optimizer up
  kDeadlineExceeded,  // run would miss the time-to-accuracy SLO
  kNoThroughput,      // pathological config, simulation made no progress
  kEvalTimeout,       // attempt exceeded the supervisor's per-attempt cap
  // Transient failures: environment bad luck, worth retrying, and excluded
  // from the feasibility surrogate.
  kPreempted,         // spot capacity reclaimed mid-run
  kInfraCrash,        // driver/scheduler/infra death unrelated to the config
  kUnknown,           // legacy records whose free text we cannot classify
};

/// True for failures a retry can plausibly fix (environment, not config).
bool is_transient(FailureKind kind);

std::string to_string(FailureKind kind);

/// Inverse of to_string; throws std::invalid_argument on unknown names.
FailureKind failure_kind_from_string(std::string_view name);

/// Best-effort classification of legacy free-text failure strings (session
/// files written before the taxonomy existed). Unrecognized non-empty text
/// maps to kUnknown, empty text to kNone.
FailureKind classify_failure_text(std::string_view text);

}  // namespace autodml::core

// Core tuner types: the black-box interface the tuner optimizes, and the
// trial/result records it produces.
//
// The tuner is deliberately decoupled from the distributed-ML evaluator: it
// sees only a ConfigSpace and an ObjectiveFunction that runs a config and
// streams checkpoints to an optional RunController (the hook early
// termination plugs into). src/workloads provides the adapter that binds
// this interface to the simulated training jobs.
#pragma once

#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "config/config_space.h"
#include "core/failure.h"

namespace autodml::core {

struct RunCheckpoint {
  double wall_seconds = 0.0;
  double samples = 0.0;
  double metric = 0.0;
};

/// Decides, checkpoint by checkpoint, whether a run should be aborted.
class RunController {
 public:
  virtual ~RunController() = default;
  /// Called once per *attempt*, before that attempt's first checkpoint (a
  /// supervisor retry calls it again). Implementations must treat the call
  /// as an attempt boundary: all state accumulated against a previous
  /// attempt — verdict streaks and streamed curve points alike — must be
  /// discarded. A restarted attempt re-streams the same configuration's
  /// learning curve from wall-clock zero, so its checkpoints are
  /// *replicates* of the previous attempt's, not a continuation; judging
  /// the new attempt on its own curve keeps monotone-in-samples fitters
  /// sound and makes verdicts independent of how many retries preceded.
  virtual void on_run_start(double usd_per_hour) { (void)usd_per_hour; }
  /// Return true to abort the run at this checkpoint.
  virtual bool should_abort(const RunCheckpoint& checkpoint) = 0;
};

struct RunOutcome {
  bool feasible = false;   // false: crashed (OOM) or diverged
  bool aborted = false;    // true: controller killed it
  /// Structured failure classification — the source of truth for retry and
  /// feasibility-model decisions. `failure` is human-readable detail only.
  FailureKind failure_kind = FailureKind::kNone;
  std::string failure;
  double objective = std::numeric_limits<double>::infinity();
  /// Evaluation cost actually paid, summed over every attempt the
  /// supervisor made (failed attempts and backoff waits included).
  double spent_seconds = 0.0;
  double usd_per_hour = 0.0;
  /// Evaluation attempts consumed (1 unless a supervisor retried).
  int attempts = 1;
  /// For aborted runs: the early-termination policy's unbiased projection
  /// of where the run would have ended. The surrogate uses it as a
  /// censored pseudo-observation so killed runs still inform the model.
  double projected_objective = std::numeric_limits<double>::infinity();

  /// Transient failures are environment noise; the feasibility surrogate
  /// must not learn them as properties of the configuration.
  bool transient_failure() const {
    return !feasible && is_transient(failure_kind);
  }
};

struct Trial {
  conf::Config config;
  RunOutcome outcome;
  /// Fantasized (kriging-believer) placeholder for a *pending* evaluation:
  /// the outcome holds a belief about the objective, not an observation.
  /// Fantasy trials condition the objective posterior so parallel proposals
  /// spread out, but they must never train the feasibility or cost models,
  /// move the incumbent, or be journaled/recorded.
  bool fantasized = false;
  /// Position in the tuner's proposal sequence (0-based), stamped on
  /// journaled trials by the async executor path; -1 when unassigned (the
  /// synchronous path, whose journal order *is* the proposal order).
  /// Journal replay sorts by it, so resume tolerates out-of-order records.
  std::int64_t proposal_index = -1;

  /// A real, completed, feasible observation. Fantasy placeholders are
  /// never "succeeded": they must not rank as incumbents or seed local
  /// search neighborhoods.
  bool succeeded() const {
    return outcome.feasible && !outcome.aborted && !fantasized;
  }
};

/// The black box: configuration in, (possibly aborted) outcome out.
class ObjectiveFunction {
 public:
  virtual ~ObjectiveFunction() = default;
  virtual const conf::ConfigSpace& space() const = 0;
  /// Run one evaluation. `controller` may be nullptr (run to completion).
  virtual RunOutcome run(const conf::Config& config,
                         RunController* controller) = 0;
  /// Metric value checkpoints must reach (drives early termination).
  virtual double target_metric() const = 0;
  /// True when the objective is dollars rather than seconds.
  virtual bool objective_is_cost() const { return false; }
  /// True when run() may be invoked from several threads at once. The
  /// default is false: the async executor then serializes run() calls in
  /// proposal order (results still overlap with proposal work), which keeps
  /// objectives with per-run deterministic state (seed-derived rng streams,
  /// run counters) bit-identical at any worker count. Override to true only
  /// when the implementation is thread-safe AND its results are independent
  /// of run() interleaving.
  virtual bool concurrent_runs_safe() const { return false; }
  /// Crash-safe resume: the tuner recovered `trial` from its journal
  /// instead of calling run(). Implementations must advance any per-run
  /// deterministic state (seed-derived rng streams, attempt counters)
  /// exactly as the live evaluation would have, so that the continuation
  /// replays the interrupted session bit-for-bit.
  virtual void notify_replayed(const Trial& trial) { (void)trial; }
};

struct TuningResult {
  std::vector<Trial> trials;  // chronological
  conf::Config best_config;
  double best_objective = std::numeric_limits<double>::infinity();
  /// best_objective after each trial (infinity until first success).
  std::vector<double> incumbent_curve;
  double total_spent_seconds = 0.0;
  /// True when tune() stopped because BoOptions::max_wall_seconds elapsed
  /// rather than because a budget was exhausted; the journal holds every
  /// finished trial, so a later run can resume the session.
  bool wall_deadline_hit = false;

  bool found_feasible() const {
    return best_objective < std::numeric_limits<double>::infinity();
  }
};

/// Shared helper: fold a finished trial into the result record.
void record_trial(TuningResult& result, Trial trial);

}  // namespace autodml::core

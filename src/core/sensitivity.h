// Knob-importance analysis from the fitted surrogate (experiment R-F7).
//
// An ARD kernel learns one lengthscale per encoded coordinate; short
// lengthscale = the objective moves fast along that coordinate = the knob
// matters. This maps coordinate-level relevances back to configuration
// parameters (one-hot categorical blocks are aggregated by their maximum)
// and normalizes to a distribution.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "config/config_space.h"

namespace autodml::core {

struct ParamImportance {
  std::string param;
  double importance = 0.0;  // normalized; sums to 1 over all params
};

/// `relevance` must have space.encoded_dimension() entries (e.g. the
/// surrogate's ard_relevance()). Returns parameters sorted by decreasing
/// importance.
std::vector<ParamImportance> ard_param_importance(
    const conf::ConfigSpace& space, std::span<const double> relevance);

class SurrogateModel;

/// First-order variance-based importance (fANOVA-lite): Monte Carlo
/// estimate of Var_v(E[f | param_i = v]) / Var(f) on the surrogate's
/// posterior mean, where f is the predicted log objective. Unlike the ARD
/// view (which reads kernel lengthscales), this measures how much of the
/// response-surface variance each knob explains by itself, so interactions
/// lower all shares. `outer` conditioning values per parameter, `inner`
/// samples per conditioning value. Returns parameters sorted by decreasing
/// importance (shares need not sum to 1). Requires surrogate.ready().
std::vector<ParamImportance> variance_importance(
    const SurrogateModel& surrogate, const conf::ConfigSpace& space,
    util::Rng& rng, int outer = 48, int inner = 16);

}  // namespace autodml::core

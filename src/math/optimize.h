// Generic numeric optimizers.
//
// Three consumers: GP hyperparameter fitting maximizes the log-marginal
// likelihood (Adam on analytic gradients, restarted, then polished with
// Nelder-Mead); learning-curve extrapolation fits power laws (Nelder-Mead);
// acquisition optimization uses its own mixed-space search in src/core.
#pragma once

#include <functional>

#include "math/matrix.h"
#include "util/rng.h"

namespace autodml::math {

/// Objective returning just a value (derivative-free methods).
using Objective = std::function<double(std::span<const double>)>;

/// Objective returning value and writing the gradient into `grad`.
using GradObjective =
    std::function<double(std::span<const double>, std::span<double> grad)>;

struct OptResult {
  Vec x;
  double value = 0.0;
  int iterations = 0;
  bool converged = false;
};

struct NelderMeadOptions {
  int max_iterations = 500;
  double initial_step = 0.5;   // simplex edge length
  double f_tolerance = 1e-9;   // stop when simplex f-spread below this
  double x_tolerance = 1e-9;   // stop when simplex x-spread below this
};

/// Minimize f starting from x0 (Nelder-Mead downhill simplex).
OptResult nelder_mead(const Objective& f, std::span<const double> x0,
                      const NelderMeadOptions& options = {});

struct AdamOptions {
  int max_iterations = 200;
  double learning_rate = 0.05;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  double grad_tolerance = 1e-6;  // stop when ||grad||_inf below this
  /// Optional box constraints. When non-empty (each sized like x0), the
  /// start point and every Adam iterate are projected onto
  /// [lower_bounds, upper_bounds], so the objective and its gradient are
  /// only ever evaluated at feasible points — an unprojected iterate
  /// drifting out of bounds would keep receiving the stale boundary
  /// gradient while its distance from the feasible box grows.
  Vec lower_bounds;
  Vec upper_bounds;
};

/// Minimize f starting from x0 (projected Adam on the provided analytic
/// gradient). Non-finite objective evaluations contribute a zero gradient
/// to the moment estimates (momentum decays but is never NaN-poisoned).
OptResult adam(const GradObjective& f, std::span<const double> x0,
               const AdamOptions& options = {});

/// Minimize a unimodal 1-D function on [lo, hi] by golden-section search.
OptResult golden_section(const std::function<double(double)>& f, double lo,
                         double hi, double tolerance = 1e-8,
                         int max_iterations = 200);

/// Central-difference numerical gradient (for tests and fallbacks).
Vec numerical_gradient(const Objective& f, std::span<const double> x,
                       double h = 1e-6);

}  // namespace autodml::math

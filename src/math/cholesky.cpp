#include "math/cholesky.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace autodml::math {

Vec CholeskyFactor::solve_lower(std::span<const double> b) const {
  const std::size_t n = lower.rows();
  if (b.size() != n) throw std::invalid_argument("solve_lower: size mismatch");
  Vec y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lower(i, j) * y[j];
    y[i] = acc / lower(i, i);
  }
  return y;
}

Vec CholeskyFactor::solve_upper(std::span<const double> y) const {
  const std::size_t n = lower.rows();
  if (y.size() != n) throw std::invalid_argument("solve_upper: size mismatch");
  Vec x(n, 0.0);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double acc = y[i];
    for (std::size_t j = i + 1; j < n; ++j) acc -= lower(j, i) * x[j];
    x[i] = acc / lower(i, i);
  }
  return x;
}

Vec CholeskyFactor::solve(std::span<const double> b) const {
  return solve_upper(solve_lower(b));
}

double CholeskyFactor::log_det() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < lower.rows(); ++i) {
    acc += std::log(lower(i, i));
  }
  return 2.0 * acc;
}

bool CholeskyFactor::append_row(std::span<const double> b, double c) {
  const std::size_t n = lower.rows();
  if (b.size() != n) throw std::invalid_argument("append_row: size mismatch");
  check_finite(b, "cholesky append column");
  // New off-diagonal row: L_new l = b, computed in the same order as the
  // from-scratch factorization so the extended factor matches it exactly.
  const Vec row = solve_lower(b);
  double diag = c + jitter;
  for (double v : row) diag -= v * v;
  if (diag <= 0.0 || !std::isfinite(diag)) return false;

  Matrix ext(n + 1, n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) ext(i, j) = lower(i, j);
  }
  for (std::size_t j = 0; j < n; ++j) ext(n, j) = row[j];
  ext(n, n) = std::sqrt(diag);
  lower = std::move(ext);
  return true;
}

Matrix CholeskyFactor::lower_inverse() const {
  const std::size_t n = lower.rows();
  Matrix inv(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    inv(j, j) = 1.0 / lower(j, j);
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = 0.0;
      for (std::size_t k = j; k < i; ++k) acc += lower(i, k) * inv(k, j);
      inv(i, j) = -acc / lower(i, i);
    }
  }
  return inv;
}

namespace {

// Shared failure reporting: `bad_pivot`/`bad_diag` (when non-null) receive
// the row whose pivot went non-positive or non-finite and the value it
// reached — the caller's error message names the culprit instead of
// reporting a bare "not positive definite".
std::optional<CholeskyFactor> scalar_impl(const Matrix& a,
                                          std::size_t* bad_pivot,
                                          double* bad_diag) {
  if (a.rows() != a.cols()) throw std::invalid_argument("cholesky: not square");
  check_finite(a, "cholesky input");
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      if (bad_pivot != nullptr) *bad_pivot = j;
      if (bad_diag != nullptr) *bad_diag = diag;
      return std::nullopt;
    }
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
      l(i, j) = acc / ljj;
    }
  }
  return CholeskyFactor{std::move(l), 0.0};
}

/// Four-accumulator dot product over contiguous slices. The split
/// accumulation order is fixed (deterministic across platforms and runs)
/// and exposes instruction-level parallelism the strict single-accumulator
/// reduction denies the compiler without -ffast-math.
double dot4(const double* a, const double* b, std::size_t m) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t t = 0;
  for (; t + 4 <= m; t += 4) {
    s0 += a[t] * b[t];
    s1 += a[t + 1] * b[t + 1];
    s2 += a[t + 2] * b[t + 2];
    s3 += a[t + 3] * b[t + 3];
  }
  for (; t < m; ++t) s0 += a[t] * b[t];
  return (s0 + s1) + (s2 + s3);
}

/// Blocked right-looking factorization, in place on the lower triangle of
/// `l` (which on entry holds a full copy of A). For each panel of `block`
/// columns: factor the diagonal block (scalar recurrence over in-panel
/// columns only — earlier panels already folded their updates in), solve
/// the panel below it, then rank-`block` update the trailing submatrix.
///
/// The trailing update — asymptotically all of the work — is a SYRK
/// (A22 -= L21 L21^T) over the solved panel. Reading the panel slices out
/// of the full matrix would touch one 4 KiB page per row (stride = n
/// doubles), so the panel is first packed into a contiguous scratch
/// buffer; the update then walks dense kb-length rows. Tiling the j loop
/// keeps a kJTile-row chunk of the packed panel L1-resident while each
/// row i streams past it, so every packed byte is reused kJTile times per
/// pass instead of evicted between dots.
bool blocked_impl_in_place(Matrix& l, std::size_t block,
                           std::size_t* bad_pivot, double* bad_diag) {
  const std::size_t n = l.rows();
  double* data = l.data().data();
  const auto row_at = [&](std::size_t i) { return data + i * n; };
  // Packed-panel rows resident per j-tile: 32 rows x 64 cols x 8 B = 16 KiB,
  // half a typical L1d, leaving room for the streaming i rows.
  constexpr std::size_t kJTile = 32;
  std::vector<double> pack;
  pack.reserve(n * std::min(block, n));
  for (std::size_t k = 0; k < n; k += block) {
    const std::size_t kb = std::min(block, n - k);
    // Diagonal block: columns [k, k+kb) over rows [k, k+kb).
    for (std::size_t j = k; j < k + kb; ++j) {
      double* rj = row_at(j);
      double diag = rj[j] - dot4(rj + k, rj + k, j - k);
      if (diag <= 0.0 || !std::isfinite(diag)) {
        if (bad_pivot != nullptr) *bad_pivot = j;
        if (bad_diag != nullptr) *bad_diag = diag;
        return false;
      }
      const double ljj = std::sqrt(diag);
      rj[j] = ljj;
      for (std::size_t i = j + 1; i < k + kb; ++i) {
        double* ri = row_at(i);
        ri[j] = (ri[j] - dot4(ri + k, rj + k, j - k)) / ljj;
      }
    }
    // Panel solve: rows [k+kb, n) against the freshly factored block.
    for (std::size_t i = k + kb; i < n; ++i) {
      double* ri = row_at(i);
      for (std::size_t j = k; j < k + kb; ++j) {
        const double* rj = row_at(j);
        ri[j] = (ri[j] - dot4(ri + k, rj + k, j - k)) / rj[j];
      }
    }
    // Pack the solved panel L21 (rows [k+kb, n), cols [k, k+kb)) densely.
    const std::size_t base = k + kb;
    const std::size_t trailing = n - base;
    pack.resize(trailing * kb);
    for (std::size_t i = base; i < n; ++i) {
      const double* src = row_at(i) + k;
      std::copy(src, src + kb, pack.data() + (i - base) * kb);
    }
    // Trailing update: A22 -= L21 L21^T, lower triangle only, j-tiled over
    // the packed panel. Each entry is one dot4 over the two packed rows,
    // so the per-entry summation order is independent of the tile shape.
    for (std::size_t jt = base; jt < n; jt += kJTile) {
      const std::size_t jt_end = std::min(jt + kJTile, n);
      for (std::size_t i = jt; i < n; ++i) {
        double* ri = row_at(i);
        const double* pi = pack.data() + (i - base) * kb;
        const std::size_t j_max = std::min(jt_end, i + 1);
        for (std::size_t j = jt; j < j_max; ++j) {
          ri[j] -= dot4(pi, pack.data() + (j - base) * kb, kb);
        }
      }
    }
  }
  // The factorization only ever read/wrote the lower triangle; clear the
  // copied-in upper half so the factor matches the scalar path's layout.
  for (std::size_t i = 0; i < n; ++i) {
    double* ri = row_at(i);
    for (std::size_t j = i + 1; j < n; ++j) ri[j] = 0.0;
  }
  return true;
}

std::optional<CholeskyFactor> blocked_impl(const Matrix& a, std::size_t block,
                                           std::size_t* bad_pivot,
                                           double* bad_diag) {
  if (a.rows() != a.cols()) throw std::invalid_argument("cholesky: not square");
  if (block == 0) throw std::invalid_argument("cholesky: zero block size");
  check_finite(a, "cholesky input");
  ADML_SPAN("math.cholesky_blocked", "n",
            static_cast<std::int64_t>(a.rows()));
  Matrix l = a;
  if (!blocked_impl_in_place(l, block, bad_pivot, bad_diag)) {
    return std::nullopt;
  }
  return CholeskyFactor{std::move(l), 0.0};
}

// Size dispatch shared by cholesky() and the jitter loop: the scalar path
// below the threshold (bit-compatible with append_row's recurrence), the
// blocked path above it.
std::optional<CholeskyFactor> cholesky_impl(const Matrix& a,
                                            std::size_t* bad_pivot,
                                            double* bad_diag) {
  if (a.rows() >= kCholeskyBlockedThreshold) {
    return blocked_impl(a, kCholeskyBlock, bad_pivot, bad_diag);
  }
  return scalar_impl(a, bad_pivot, bad_diag);
}

}  // namespace

std::optional<CholeskyFactor> cholesky(const Matrix& a) {
  return cholesky_impl(a, nullptr, nullptr);
}

std::optional<CholeskyFactor> cholesky_scalar(const Matrix& a) {
  return scalar_impl(a, nullptr, nullptr);
}

std::optional<CholeskyFactor> cholesky_blocked(const Matrix& a,
                                               std::size_t block) {
  return blocked_impl(a, block, nullptr, nullptr);
}

CholeskyFactor cholesky_with_jitter(const Matrix& a, double initial_jitter,
                                    int max_tries) {
  std::size_t bad_pivot = 0;
  double bad_diag = 0.0;
  if (auto f = cholesky_impl(a, &bad_pivot, &bad_diag)) return *f;
  // Scale the jitter to the problem: use the mean diagonal magnitude.
  double mean_diag = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) mean_diag += std::abs(a(i, i));
  mean_diag = a.rows() ? mean_diag / static_cast<double>(a.rows()) : 1.0;
  if (mean_diag == 0.0) mean_diag = 1.0;

  double jitter = initial_jitter * mean_diag;
  for (int attempt = 0; attempt < max_tries; ++attempt, jitter *= 10.0) {
    Matrix boosted = a;
    boosted.add_to_diagonal(jitter);
    if (auto f = cholesky_impl(boosted, &bad_pivot, &bad_diag)) {
      f->jitter = jitter;
      return *f;
    }
  }
  throw std::runtime_error(
      "cholesky_with_jitter: matrix not PD even with maximum jitter (pivot " +
      std::to_string(bad_pivot) + " reached " + std::to_string(bad_diag) +
      " on the last attempt)");
}

}  // namespace autodml::math

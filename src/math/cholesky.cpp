#include "math/cholesky.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace autodml::math {

Vec CholeskyFactor::solve_lower(std::span<const double> b) const {
  const std::size_t n = lower.rows();
  if (b.size() != n) throw std::invalid_argument("solve_lower: size mismatch");
  Vec y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lower(i, j) * y[j];
    y[i] = acc / lower(i, i);
  }
  return y;
}

Vec CholeskyFactor::solve_upper(std::span<const double> y) const {
  const std::size_t n = lower.rows();
  if (y.size() != n) throw std::invalid_argument("solve_upper: size mismatch");
  Vec x(n, 0.0);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double acc = y[i];
    for (std::size_t j = i + 1; j < n; ++j) acc -= lower(j, i) * x[j];
    x[i] = acc / lower(i, i);
  }
  return x;
}

Vec CholeskyFactor::solve(std::span<const double> b) const {
  return solve_upper(solve_lower(b));
}

double CholeskyFactor::log_det() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < lower.rows(); ++i) {
    acc += std::log(lower(i, i));
  }
  return 2.0 * acc;
}

bool CholeskyFactor::append_row(std::span<const double> b, double c) {
  const std::size_t n = lower.rows();
  if (b.size() != n) throw std::invalid_argument("append_row: size mismatch");
  check_finite(b, "cholesky append column");
  // New off-diagonal row: L_new l = b, computed in the same order as the
  // from-scratch factorization so the extended factor matches it exactly.
  const Vec row = solve_lower(b);
  double diag = c + jitter;
  for (double v : row) diag -= v * v;
  if (diag <= 0.0 || !std::isfinite(diag)) return false;

  Matrix ext(n + 1, n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) ext(i, j) = lower(i, j);
  }
  for (std::size_t j = 0; j < n; ++j) ext(n, j) = row[j];
  ext(n, n) = std::sqrt(diag);
  lower = std::move(ext);
  return true;
}

Matrix CholeskyFactor::lower_inverse() const {
  const std::size_t n = lower.rows();
  Matrix inv(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    inv(j, j) = 1.0 / lower(j, j);
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = 0.0;
      for (std::size_t k = j; k < i; ++k) acc += lower(i, k) * inv(k, j);
      inv(i, j) = -acc / lower(i, i);
    }
  }
  return inv;
}

namespace {

// Shared factorization core. On failure, `bad_pivot`/`bad_diag` (when
// non-null) receive the row whose pivot went non-positive or non-finite and
// the value it reached — the caller's error message names the culprit
// instead of reporting a bare "not positive definite".
std::optional<CholeskyFactor> cholesky_impl(const Matrix& a,
                                            std::size_t* bad_pivot,
                                            double* bad_diag) {
  if (a.rows() != a.cols()) throw std::invalid_argument("cholesky: not square");
  check_finite(a, "cholesky input");
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      if (bad_pivot != nullptr) *bad_pivot = j;
      if (bad_diag != nullptr) *bad_diag = diag;
      return std::nullopt;
    }
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
      l(i, j) = acc / ljj;
    }
  }
  return CholeskyFactor{std::move(l), 0.0};
}

}  // namespace

std::optional<CholeskyFactor> cholesky(const Matrix& a) {
  return cholesky_impl(a, nullptr, nullptr);
}

CholeskyFactor cholesky_with_jitter(const Matrix& a, double initial_jitter,
                                    int max_tries) {
  std::size_t bad_pivot = 0;
  double bad_diag = 0.0;
  if (auto f = cholesky_impl(a, &bad_pivot, &bad_diag)) return *f;
  // Scale the jitter to the problem: use the mean diagonal magnitude.
  double mean_diag = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) mean_diag += std::abs(a(i, i));
  mean_diag = a.rows() ? mean_diag / static_cast<double>(a.rows()) : 1.0;
  if (mean_diag == 0.0) mean_diag = 1.0;

  double jitter = initial_jitter * mean_diag;
  for (int attempt = 0; attempt < max_tries; ++attempt, jitter *= 10.0) {
    Matrix boosted = a;
    boosted.add_to_diagonal(jitter);
    if (auto f = cholesky_impl(boosted, &bad_pivot, &bad_diag)) {
      f->jitter = jitter;
      return *f;
    }
  }
  throw std::runtime_error(
      "cholesky_with_jitter: matrix not PD even with maximum jitter (pivot " +
      std::to_string(bad_pivot) + " reached " + std::to_string(bad_diag) +
      " on the last attempt)");
}

}  // namespace autodml::math

#include "math/optimize.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace autodml::math {

OptResult nelder_mead(const Objective& f, std::span<const double> x0,
                      const NelderMeadOptions& options) {
  const std::size_t n = x0.size();
  if (n == 0) throw std::invalid_argument("nelder_mead: empty start point");

  // Standard coefficients.
  constexpr double kReflect = 1.0;
  constexpr double kExpand = 2.0;
  constexpr double kContract = 0.5;
  constexpr double kShrink = 0.5;

  std::vector<Vec> simplex;
  simplex.reserve(n + 1);
  simplex.emplace_back(x0.begin(), x0.end());
  for (std::size_t i = 0; i < n; ++i) {
    Vec v(x0.begin(), x0.end());
    v[i] += options.initial_step;
    simplex.push_back(std::move(v));
  }
  std::vector<double> fv(n + 1);
  for (std::size_t i = 0; i <= n; ++i) fv[i] = f(simplex[i]);

  OptResult result;
  int iter = 0;
  for (; iter < options.max_iterations; ++iter) {
    // Order simplex by function value.
    std::vector<std::size_t> order(n + 1);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return fv[a] < fv[b]; });
    const std::size_t best = order[0];
    const std::size_t worst = order[n];
    const std::size_t second_worst = order[n - 1];

    // Convergence: spread in f and in x.
    const double f_spread = std::abs(fv[worst] - fv[best]);
    double x_spread = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      x_spread = std::max(x_spread,
                          std::abs(simplex[worst][i] - simplex[best][i]));
    }
    if (f_spread < options.f_tolerance && x_spread < options.x_tolerance) {
      result.converged = true;
      break;
    }

    // Centroid of all but worst.
    Vec centroid(n, 0.0);
    for (std::size_t k = 0; k <= n; ++k) {
      if (k == worst) continue;
      axpy(1.0, simplex[k], centroid);
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    const auto point_along = [&](double coeff) {
      Vec p(n);
      for (std::size_t i = 0; i < n; ++i) {
        p[i] = centroid[i] + coeff * (centroid[i] - simplex[worst][i]);
      }
      return p;
    };

    Vec reflected = point_along(kReflect);
    const double f_reflected = f(reflected);
    if (f_reflected < fv[best]) {
      Vec expanded = point_along(kExpand);
      const double f_expanded = f(expanded);
      if (f_expanded < f_reflected) {
        simplex[worst] = std::move(expanded);
        fv[worst] = f_expanded;
      } else {
        simplex[worst] = std::move(reflected);
        fv[worst] = f_reflected;
      }
      continue;
    }
    if (f_reflected < fv[second_worst]) {
      simplex[worst] = std::move(reflected);
      fv[worst] = f_reflected;
      continue;
    }
    // Contraction (outside if reflected beats worst, else inside).
    const bool outside = f_reflected < fv[worst];
    Vec contracted = point_along(outside ? kContract : -kContract);
    const double f_contracted = f(contracted);
    if (f_contracted < std::min(f_reflected, fv[worst])) {
      simplex[worst] = std::move(contracted);
      fv[worst] = f_contracted;
      continue;
    }
    // Shrink toward best.
    for (std::size_t k = 0; k <= n; ++k) {
      if (k == best) continue;
      for (std::size_t i = 0; i < n; ++i) {
        simplex[k][i] =
            simplex[best][i] + kShrink * (simplex[k][i] - simplex[best][i]);
      }
      fv[k] = f(simplex[k]);
    }
  }

  const auto best_it = std::min_element(fv.begin(), fv.end());
  result.x = simplex[static_cast<std::size_t>(best_it - fv.begin())];
  result.value = *best_it;
  result.iterations = iter;
  return result;
}

OptResult adam(const GradObjective& f, std::span<const double> x0,
               const AdamOptions& options) {
  const std::size_t n = x0.size();
  const bool bounded =
      !options.lower_bounds.empty() || !options.upper_bounds.empty();
  if (bounded && (options.lower_bounds.size() != n ||
                  options.upper_bounds.size() != n)) {
    throw std::invalid_argument("adam: bounds/start size mismatch");
  }
  const auto project = [&](Vec& p) {
    if (!bounded) return;
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = std::clamp(p[i], options.lower_bounds[i], options.upper_bounds[i]);
    }
  };

  Vec x(x0.begin(), x0.end());
  project(x);
  Vec m(n, 0.0), v(n, 0.0), grad(n, 0.0);
  OptResult result;
  result.x = x;
  result.value = f(x, grad);

  Vec best_x = x;
  double best_f = std::isfinite(result.value)
                      ? result.value
                      : std::numeric_limits<double>::infinity();
  // Whether the evaluation that produced `grad` returned a finite value; a
  // non-finite objective makes its gradient meaningless, and feeding it into
  // the moment estimates would poison m/v with NaN for every later step.
  bool grad_valid = std::isfinite(result.value);

  int iter = 0;
  for (; iter < options.max_iterations; ++iter) {
    if (grad_valid) {
      double grad_inf = 0.0;
      for (double g : grad) grad_inf = std::max(grad_inf, std::abs(g));
      if (grad_inf < options.grad_tolerance) {
        result.converged = true;
        break;
      }
    }
    const double t = static_cast<double>(iter + 1);
    for (std::size_t i = 0; i < n; ++i) {
      // On an invalid evaluation the gradient contribution is zero: the
      // moments decay and the iterate coasts on momentum out of the bad
      // region instead of freezing or going NaN.
      const double g = grad_valid ? grad[i] : 0.0;
      m[i] = options.beta1 * m[i] + (1.0 - options.beta1) * g;
      v[i] = options.beta2 * v[i] + (1.0 - options.beta2) * g * g;
      const double m_hat = m[i] / (1.0 - std::pow(options.beta1, t));
      const double v_hat = v[i] / (1.0 - std::pow(options.beta2, t));
      x[i] -= options.learning_rate * m_hat /
              (std::sqrt(v_hat) + options.epsilon);
    }
    project(x);
    const double fx = f(x, grad);
    grad_valid = std::isfinite(fx);
    if (grad_valid && fx < best_f) {
      best_f = fx;
      best_x = x;
    }
  }
  result.x = std::move(best_x);
  result.value = best_f;
  result.iterations = iter;
  return result;
}

OptResult golden_section(const std::function<double(double)>& f, double lo,
                         double hi, double tolerance, int max_iterations) {
  if (lo > hi) std::swap(lo, hi);
  const double inv_phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double a = lo, b = hi;
  double c = b - inv_phi * (b - a);
  double d = a + inv_phi * (b - a);
  double fc = f(c), fd = f(d);
  int iter = 0;
  for (; iter < max_iterations && (b - a) > tolerance; ++iter) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - inv_phi * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + inv_phi * (b - a);
      fd = f(d);
    }
  }
  OptResult result;
  const double x = (a + b) / 2.0;
  result.x = {x};
  result.value = f(x);
  result.iterations = iter;
  result.converged = (b - a) <= tolerance;
  return result;
}

Vec numerical_gradient(const Objective& f, std::span<const double> x,
                       double h) {
  Vec grad(x.size(), 0.0);
  Vec probe(x.begin(), x.end());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double orig = probe[i];
    probe[i] = orig + h;
    const double fp = f(probe);
    probe[i] = orig - h;
    const double fm = f(probe);
    probe[i] = orig;
    grad[i] = (fp - fm) / (2.0 * h);
  }
  return grad;
}

}  // namespace autodml::math

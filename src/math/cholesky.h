// Cholesky factorization and SPD solves.
//
// The GP posterior and log-marginal-likelihood both reduce to solves against
// K + sigma^2 I. Kernel matrices are only *numerically* SPD, so the factory
// retries with geometrically increasing diagonal jitter before giving up.
//
// Two factorization paths share one contract (lower factor, jitter carried
// by the caller, nullopt on a non-positive pivot):
//   - a scalar left-looking loop, the reference implementation whose exact
//     operation order the rank-1 append_row reproduces;
//   - a cache-blocked right-looking factorization for large matrices
//     (panel factor + tiled trailing-submatrix update), selected by
//     cholesky()/cholesky_with_jitter() past kCholeskyBlockedThreshold.
// The two differ only in floating-point summation order; both are
// deterministic and single-threaded, and tests bound their divergence.
#pragma once

#include <optional>

#include "math/matrix.h"

namespace autodml::math {

/// Matrices at least this large factorize through the blocked path.
inline constexpr std::size_t kCholeskyBlockedThreshold = 128;

/// Tile edge of the blocked factorization: panels of kCholeskyBlock
/// columns, trailing updates on kCholeskyBlock-deep strips (64 columns =
/// 32 KiB per row strip, two strips resident in a typical L1d).
inline constexpr std::size_t kCholeskyBlock = 64;

struct CholeskyFactor {
  Matrix lower;        // L such that L * L^T = A (+ jitter*I)
  double jitter = 0.0; // diagonal boost that was required (0 if none)

  /// Solve L y = b.
  Vec solve_lower(std::span<const double> b) const;
  /// Solve L^T x = y.
  Vec solve_upper(std::span<const double> y) const;
  /// Solve (L L^T) x = b.
  Vec solve(std::span<const double> b) const;
  /// log det(L L^T) = 2 * sum log L_ii.
  double log_det() const;

  /// Rank-1 append: extend the factor of an n x n matrix A to the factor of
  /// [[A, b], [b^T, c]] in O(n^2) — one forward solve for the new row plus a
  /// scalar pivot — instead of the O(n^3) refactorization. The stored jitter
  /// is added to `c`, so the result is identical to refactorizing the
  /// jittered (n+1) x (n+1) matrix from scratch (bit-for-bit against the
  /// *scalar* path, whose recurrence the append replays in the same order;
  /// against the blocked path the difference is summation order only, the
  /// same bound the blocked-vs-scalar tests pin). Returns false and leaves
  /// the factor unchanged when the new pivot is non-positive or non-finite,
  /// i.e. the extended matrix is not PD at this jitter; callers fall back to
  /// a full factorization.
  [[nodiscard]] bool append_row(std::span<const double> b, double c);

  /// Explicit inverse of the lower-triangular factor (L^{-1}, lower
  /// triangular). O(n^3/6) — used to assemble (L L^T)^{-1} as
  /// L^{-T} L^{-1} far cheaper than n unit-vector solves.
  Matrix lower_inverse() const;
};

/// Plain factorization; returns nullopt if A is not positive definite.
/// Dispatches to the blocked path when a.rows() >= kCholeskyBlockedThreshold
/// and to the scalar path below it.
std::optional<CholeskyFactor> cholesky(const Matrix& a);

/// Scalar left-looking factorization, any size. This is the operation
/// order CholeskyFactor::append_row extends bit-for-bit.
std::optional<CholeskyFactor> cholesky_scalar(const Matrix& a);

/// Cache-blocked right-looking factorization, any size (block defaults to
/// kCholeskyBlock; sizes that do not divide n are handled). Same
/// non-PD contract as cholesky_scalar; results differ from the scalar
/// path only in floating-point summation order.
std::optional<CholeskyFactor> cholesky_blocked(
    const Matrix& a, std::size_t block = kCholeskyBlock);

/// Factorization with adaptive jitter: tries jitter = 0, then
/// `initial_jitter * 10^k` for k = 0..max_tries-1 (scaled by mean diagonal).
/// Throws std::runtime_error if all attempts fail.
CholeskyFactor cholesky_with_jitter(const Matrix& a,
                                    double initial_jitter = 1e-10,
                                    int max_tries = 8);

}  // namespace autodml::math

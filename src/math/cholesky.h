// Cholesky factorization and SPD solves.
//
// The GP posterior and log-marginal-likelihood both reduce to solves against
// K + sigma^2 I. Kernel matrices are only *numerically* SPD, so the factory
// retries with geometrically increasing diagonal jitter before giving up.
#pragma once

#include <optional>

#include "math/matrix.h"

namespace autodml::math {

struct CholeskyFactor {
  Matrix lower;        // L such that L * L^T = A (+ jitter*I)
  double jitter = 0.0; // diagonal boost that was required (0 if none)

  /// Solve L y = b.
  Vec solve_lower(std::span<const double> b) const;
  /// Solve L^T x = y.
  Vec solve_upper(std::span<const double> y) const;
  /// Solve (L L^T) x = b.
  Vec solve(std::span<const double> b) const;
  /// log det(L L^T) = 2 * sum log L_ii.
  double log_det() const;

  /// Rank-1 append: extend the factor of an n x n matrix A to the factor of
  /// [[A, b], [b^T, c]] in O(n^2) — one forward solve for the new row plus a
  /// scalar pivot — instead of the O(n^3) refactorization. The stored jitter
  /// is added to `c`, so the result is identical (bit-for-bit: the update
  /// performs the same operations in the same order) to refactorizing the
  /// jittered (n+1) x (n+1) matrix from scratch. Returns false and leaves
  /// the factor unchanged when the new pivot is non-positive or non-finite,
  /// i.e. the extended matrix is not PD at this jitter; callers fall back to
  /// a full factorization.
  [[nodiscard]] bool append_row(std::span<const double> b, double c);

  /// Explicit inverse of the lower-triangular factor (L^{-1}, lower
  /// triangular). O(n^3/6) — used to assemble (L L^T)^{-1} as
  /// L^{-T} L^{-1} far cheaper than n unit-vector solves.
  Matrix lower_inverse() const;
};

/// Plain factorization; returns nullopt if A is not positive definite.
std::optional<CholeskyFactor> cholesky(const Matrix& a);

/// Factorization with adaptive jitter: tries jitter = 0, then
/// `initial_jitter * 10^k` for k = 0..max_tries-1 (scaled by mean diagonal).
/// Throws std::runtime_error if all attempts fail.
CholeskyFactor cholesky_with_jitter(const Matrix& a,
                                    double initial_jitter = 1e-10,
                                    int max_tries = 8);

}  // namespace autodml::math

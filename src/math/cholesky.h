// Cholesky factorization and SPD solves.
//
// The GP posterior and log-marginal-likelihood both reduce to solves against
// K + sigma^2 I. Kernel matrices are only *numerically* SPD, so the factory
// retries with geometrically increasing diagonal jitter before giving up.
#pragma once

#include <optional>

#include "math/matrix.h"

namespace autodml::math {

struct CholeskyFactor {
  Matrix lower;        // L such that L * L^T = A (+ jitter*I)
  double jitter = 0.0; // diagonal boost that was required (0 if none)

  /// Solve L y = b.
  Vec solve_lower(std::span<const double> b) const;
  /// Solve L^T x = y.
  Vec solve_upper(std::span<const double> y) const;
  /// Solve (L L^T) x = b.
  Vec solve(std::span<const double> b) const;
  /// log det(L L^T) = 2 * sum log L_ii.
  double log_det() const;
};

/// Plain factorization; returns nullopt if A is not positive definite.
std::optional<CholeskyFactor> cholesky(const Matrix& a);

/// Factorization with adaptive jitter: tries jitter = 0, then
/// `initial_jitter * 10^k` for k = 0..max_tries-1 (scaled by mean diagonal).
/// Throws std::runtime_error if all attempts fail.
CholeskyFactor cholesky_with_jitter(const Matrix& a,
                                    double initial_jitter = 1e-10,
                                    int max_tries = 8);

}  // namespace autodml::math

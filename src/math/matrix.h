// Dense row-major matrix and vector helpers.
//
// Deliberately minimal: the GP library needs SPD factorization, triangular
// solves, mat-vec/mat-mat products, and elementwise vector arithmetic —
// nothing else — so we keep the surface small rather than growing a general
// linear-algebra package.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/check.h"

namespace autodml::math {

using Vec = std::vector<double>;

// ---- Vector helpers ------------------------------------------------------

double dot(std::span<const double> a, std::span<const double> b);
double norm2(std::span<const double> a);           // Euclidean norm
void axpy(double alpha, std::span<const double> x, std::span<double> y);  // y += alpha*x
Vec scaled(std::span<const double> x, double alpha);
Vec added(std::span<const double> a, std::span<const double> b);
Vec subtracted(std::span<const double> a, std::span<const double> b);

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t i, std::size_t j) {
    AUTODML_CHECK(i < rows_ && j < cols_, index_msg(i, j));
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    AUTODML_CHECK(i < rows_ && j < cols_, index_msg(i, j));
    return data_[i * cols_ + j];
  }

  std::span<double> row(std::size_t i) {
    AUTODML_CHECK(i < rows_, index_msg(i, 0));
    return {data_.data() + i * cols_, cols_};
  }
  std::span<const double> row(std::size_t i) const {
    AUTODML_CHECK(i < rows_, index_msg(i, 0));
    return {data_.data() + i * cols_, cols_};
  }

  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }

  Matrix transposed() const;

  /// this * other.
  Matrix matmul(const Matrix& other) const;

  /// this * v.
  Vec matvec(std::span<const double> v) const;

  /// this^T * v.
  Vec matvec_transposed(std::span<const double> v) const;

  void add_to_diagonal(double value);

  /// Max |a_ij - b_ij|.
  static double max_abs_diff(const Matrix& a, const Matrix& b);

 private:
  std::string index_msg(std::size_t i, std::size_t j) const {
    return "Matrix index (" + std::to_string(i) + "," + std::to_string(j) +
           ") out of bounds for " + std::to_string(rows_) + "x" +
           std::to_string(cols_);
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Throws (AUTODML_CHECKED builds only) when any entry of `m` is NaN/Inf,
/// naming `what` and the offending row/col. No-op otherwise.
void check_finite(const Matrix& m, const char* what);

/// Same for a vector; the offending index is reported.
void check_finite(std::span<const double> v, const char* what);

}  // namespace autodml::math

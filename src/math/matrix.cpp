#include "math/matrix.h"

#include <algorithm>
#include <cmath>

namespace autodml::math {

double dot(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

Vec scaled(std::span<const double> x, double alpha) {
  Vec out(x.begin(), x.end());
  for (double& v : out) v *= alpha;
  return out;
}

Vec added(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("added: size mismatch");
  Vec out(a.begin(), a.end());
  for (std::size_t i = 0; i < b.size(); ++i) out[i] += b[i];
  return out;
}

Vec subtracted(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size())
    throw std::invalid_argument("subtracted: size mismatch");
  Vec out(a.begin(), a.end());
  for (std::size_t i = 0; i < b.size(); ++i) out[i] -= b[i];
  return out;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  }
  return t;
}

Matrix Matrix::matmul(const Matrix& other) const {
  if (cols_ != other.rows_)
    throw std::invalid_argument("matmul: inner dimension mismatch");
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        out(i, j) += a * other(k, j);
      }
    }
  }
  return out;
}

Vec Matrix::matvec(std::span<const double> v) const {
  if (v.size() != cols_) throw std::invalid_argument("matvec: size mismatch");
  Vec out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) out[i] = dot(row(i), v);
  return out;
}

Vec Matrix::matvec_transposed(std::span<const double> v) const {
  if (v.size() != rows_)
    throw std::invalid_argument("matvec_transposed: size mismatch");
  Vec out(cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double a = v[i];
    if (a == 0.0) continue;
    axpy(a, row(i), out);
  }
  return out;
}

void Matrix::add_to_diagonal(double value) {
  const std::size_t n = std::min(rows_, cols_);
  for (std::size_t i = 0; i < n; ++i) (*this)(i, i) += value;
}

void check_finite(const Matrix& m, const char* what) {
#if AUTODML_CHECKED_ENABLED
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      AUTODML_CHECK(std::isfinite(m(i, j)),
                    std::string(what) + ": non-finite entry " +
                        std::to_string(m(i, j)) + " at (" + std::to_string(i) +
                        "," + std::to_string(j) + ")");
    }
  }
#else
  (void)m;
  (void)what;
#endif
}

void check_finite(std::span<const double> v, const char* what) {
#if AUTODML_CHECKED_ENABLED
  for (std::size_t i = 0; i < v.size(); ++i) {
    AUTODML_CHECK(std::isfinite(v[i]),
                  std::string(what) + ": non-finite entry " +
                      std::to_string(v[i]) + " at index " + std::to_string(i));
  }
#else
  (void)v;
  (void)what;
#endif
}

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols())
    throw std::invalid_argument("max_abs_diff: shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    m = std::max(m, std::abs(a.data()[i] - b.data()[i]));
  }
  return m;
}

}  // namespace autodml::math

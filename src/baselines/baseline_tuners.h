// Baseline configuration tuners.
//
// Every comparison the paper's evaluation makes needs the comparator
// implemented, not waved at. All baselines speak the same ObjectiveFunction
// interface as the core tuner and produce the same TuningResult records, so
// benches sweep methods uniformly:
//   - random search: uniform i.i.d. configurations (the honest default);
//   - grid search: full-factorial grid, deterministically shuffled so a
//     truncated budget still spreads over the space;
//   - coordinate descent: OtterTune-flavoured greedy one-knob-at-a-time;
//   - simulated annealing: neighbor moves with Metropolis acceptance on the
//     log objective;
//   - successive halving: many cheap partial runs, promote by intermediate
//     metric (Hyperband's inner loop) — exploits the checkpoint stream;
//   - CherryPick-style BO: EI acquisition, no early termination, smaller
//     initial design (the closest published relative of the core tuner).
#pragma once

#include <string>

#include "core/bo_tuner.h"
#include "core/tuner_types.h"

namespace autodml::baselines {

core::TuningResult random_search(core::ObjectiveFunction& objective,
                                 int max_evaluations, std::uint64_t seed);

core::TuningResult grid_search(core::ObjectiveFunction& objective,
                               int max_evaluations, std::uint64_t seed,
                               std::size_t points_per_axis = 3);

struct CoordinateDescentOptions {
  int values_per_continuous_axis = 5;
  int max_sweeps = 8;  // full passes over the parameters
};

core::TuningResult coordinate_descent(
    core::ObjectiveFunction& objective, int max_evaluations,
    std::uint64_t seed, const CoordinateDescentOptions& options = {});

struct AnnealingOptions {
  double initial_temperature = 1.0;  // on log-objective deltas
  double cooling = 0.90;             // per-move multiplier
  double neighbor_sigma = 0.15;
};

core::TuningResult simulated_annealing(core::ObjectiveFunction& objective,
                                       int max_evaluations,
                                       std::uint64_t seed,
                                       const AnnealingOptions& options = {});

struct SuccessiveHalvingOptions {
  int initial_configs = 16;
  double eta = 2.0;                  // keep top 1/eta per rung
  double first_rung_seconds = 1800;  // partial-run budget at rung 0
  int max_rungs = 3;                 // then survivors run to completion
};

core::TuningResult successive_halving(
    core::ObjectiveFunction& objective, int max_evaluations,
    std::uint64_t seed, const SuccessiveHalvingOptions& options = {});

/// CherryPick-configured core tuner (EI, cost-aware, no early termination).
core::TuningResult cherrypick_bo(core::ObjectiveFunction& objective,
                                 int max_evaluations, std::uint64_t seed);

/// The paper's full method, default configuration (log-EI + early
/// termination + feasibility model). Convenience wrapper over BoTuner.
core::TuningResult autodml_bo(core::ObjectiveFunction& objective,
                              int max_evaluations, std::uint64_t seed,
                              core::BoOptions options = {});

/// Method registry for benches: name -> callable.
using TunerFn = core::TuningResult (*)(core::ObjectiveFunction&, int,
                                       std::uint64_t);
struct NamedTuner {
  std::string name;
  TunerFn fn;
};
const std::vector<NamedTuner>& tuner_registry();

}  // namespace autodml::baselines

#include "baselines/parallel_bo.h"

#include <algorithm>

#include "config/sampler.h"
#include "core/acquisition_optimizer.h"
#include "core/early_termination.h"

namespace autodml::baselines {

// Deliberately single-threaded: each round evaluates its constant-liar
// batch sequentially and charges the *slowest* member to wall_clock_seconds,
// modeling q machines running in parallel. Real threads would break
// determinism without changing any number this baseline reports.
ParallelBoResult parallel_bo(core::ObjectiveFunction& objective,
                             const ParallelBoOptions& options) {
  if (options.batch_size < 1 || options.rounds < 1)
    throw std::invalid_argument("parallel_bo: bad batch/round counts");
  util::Rng rng(options.seed);
  const conf::ConfigSpace& space = objective.space();

  core::EarlyTermOptions early_term = options.early_term;
  early_term.target_metric = objective.target_metric();
  early_term.objective_is_cost = objective.objective_is_cost();

  ParallelBoResult result;
  std::vector<core::Trial> history;

  const auto run_round = [&](const std::vector<conf::Config>& batch,
                             bool allow_early_term) {
    double slowest = 0.0;
    for (const conf::Config& config : batch) {
      core::Trial trial;
      trial.config = config;
      if (allow_early_term && early_term.enabled &&
          result.tuning.found_feasible()) {
        core::EarlyTerminationPolicy policy(early_term,
                                            result.tuning.best_objective);
        trial.outcome = objective.run(config, &policy);
      } else {
        trial.outcome = objective.run(config, nullptr);
      }
      slowest = std::max(slowest, trial.outcome.spent_seconds);
      history.push_back(trial);
      core::record_trial(result.tuning, std::move(trial));
    }
    result.wall_clock_seconds += slowest;
  };

  // Round 0: space-filling design.
  run_round(conf::latin_hypercube(
                space, static_cast<std::size_t>(options.batch_size), rng),
            /*allow_early_term=*/false);

  for (int round = 1; round < options.rounds; ++round) {
    const std::vector<conf::Config> batch = core::propose_batch(
        space, options.surrogate, options.acquisition, history,
        static_cast<std::size_t>(options.batch_size), rng,
        options.acq_optimizer);
    run_round(batch, /*allow_early_term=*/true);
  }
  return result;
}

}  // namespace autodml::baselines

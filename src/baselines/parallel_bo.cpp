#include "baselines/parallel_bo.h"

#include <algorithm>
#include <memory>

#include "config/sampler.h"
#include "core/acquisition_optimizer.h"
#include "core/early_termination.h"
#include "util/thread_pool.h"

namespace autodml::baselines {

// Evaluation stays single-threaded: each round runs its kriging-believer
// batch (core::propose_batch) sequentially and charges the *slowest* member
// to wall_clock_seconds, modeling q machines running in parallel — the
// synchronous-rounds counterpart of BoTuner's async_q pipeline, which
// overlaps evaluations for real. Acquisition scoring inside each proposal
// may use real threads (acq_threads > 1) — its deterministic reduction
// keeps every number this baseline reports identical.
//
// Lock discipline: this driver owns no mutex-guarded state of its own.
// The only concurrency is inside core::propose_candidate's chunked
// scoring, whose workers write disjoint slots (see
// acquisition_optimizer.cpp); the pool's annotated queue mutex
// (util/thread_pool.h) is the sole capability in play, so clang
// -Wthread-safety verifies this file by verifying its callees.
ParallelBoResult parallel_bo(core::ObjectiveFunction& objective,
                             const ParallelBoOptions& options) {
  if (options.batch_size < 1 || options.rounds < 1)
    throw std::invalid_argument("parallel_bo: bad batch/round counts");
  util::Rng rng(options.seed);
  const conf::ConfigSpace& space = objective.space();

  std::unique_ptr<util::ThreadPool> acq_pool;
  core::AcqOptimizerOptions acq_optimizer = options.acq_optimizer;
  if (options.acq_threads > 1) {
    acq_pool = std::make_unique<util::ThreadPool>(
        static_cast<std::size_t>(options.acq_threads));
    acq_optimizer.pool = acq_pool.get();
  }

  core::EarlyTermOptions early_term = options.early_term;
  early_term.target_metric = objective.target_metric();
  early_term.objective_is_cost = objective.objective_is_cost();

  ParallelBoResult result;
  std::vector<core::Trial> history;

  const auto run_round = [&](const std::vector<conf::Config>& batch,
                             bool allow_early_term) {
    double slowest = 0.0;
    for (const conf::Config& config : batch) {
      core::Trial trial;
      trial.config = config;
      if (allow_early_term && early_term.enabled &&
          result.tuning.found_feasible()) {
        core::EarlyTerminationPolicy policy(early_term,
                                            result.tuning.best_objective);
        trial.outcome = objective.run(config, &policy);
      } else {
        trial.outcome = objective.run(config, nullptr);
      }
      slowest = std::max(slowest, trial.outcome.spent_seconds);
      history.push_back(trial);
      core::record_trial(result.tuning, std::move(trial));
    }
    result.wall_clock_seconds += slowest;
  };

  // Round 0: space-filling design.
  run_round(conf::latin_hypercube(
                space, static_cast<std::size_t>(options.batch_size), rng),
            /*allow_early_term=*/false);

  for (int round = 1; round < options.rounds; ++round) {
    const std::vector<conf::Config> batch = core::propose_batch(
        space, options.surrogate, options.acquisition, history,
        static_cast<std::size_t>(options.batch_size), rng, acq_optimizer);
    run_round(batch, /*allow_early_term=*/true);
  }
  return result;
}

}  // namespace autodml::baselines

// Synchronous parallel Bayesian optimization.
//
// When `batch_size` training runs can execute concurrently (separate
// clusters), the tuner proposes a batch per round via the constant-liar
// heuristic and the round's wall-clock time is the *maximum* of its runs'
// evaluation times instead of their sum. This driver executes rounds
// sequentially (the simulated evaluations are single-threaded) but accounts
// wall clock as a parallel executor would — the quantity experiment R-F13
// reports. Acquisition scoring inside each proposal can optionally run on a
// thread pool (`acq_threads`) without changing any proposal.
#pragma once

#include "core/bo_tuner.h"
#include "core/tuner_types.h"

namespace autodml::baselines {

struct ParallelBoOptions {
  int batch_size = 4;
  int rounds = 8;  // total evaluations = batch_size * rounds (+ design)
  core::AcquisitionKind acquisition = core::AcquisitionKind::kLogEi;
  core::EarlyTermOptions early_term;
  core::SurrogateOptions surrogate;
  core::AcqOptimizerOptions acq_optimizer;
  /// Worker threads for acquisition-candidate scoring inside each
  /// constant-liar proposal (1 = serial). Deterministic at any value: the
  /// batches — and every number this baseline reports — are identical.
  int acq_threads = 1;
  std::uint64_t seed = 1;
};

struct ParallelBoResult {
  core::TuningResult tuning;
  /// Simulated wall-clock the search occupies with `batch_size`-way
  /// parallelism: sum over rounds of the round's slowest evaluation.
  double wall_clock_seconds = 0.0;
};

/// First round is a Latin-hypercube design of `batch_size` points; every
/// later round is a constant-liar batch. Early termination applies once an
/// incumbent exists.
ParallelBoResult parallel_bo(core::ObjectiveFunction& objective,
                             const ParallelBoOptions& options);

}  // namespace autodml::baselines

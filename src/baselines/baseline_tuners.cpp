#include "baselines/baseline_tuners.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "config/sampler.h"

namespace autodml::baselines {

namespace {

core::Trial run_full(core::ObjectiveFunction& objective,
                     const conf::Config& config) {
  core::Trial trial;
  trial.config = config;
  trial.outcome = objective.run(config, nullptr);
  return trial;
}

bool budget_left(const core::TuningResult& result, int max_evaluations) {
  return static_cast<int>(result.trials.size()) < max_evaluations;
}

}  // namespace

core::TuningResult random_search(core::ObjectiveFunction& objective,
                                 int max_evaluations, std::uint64_t seed) {
  util::Rng rng(seed);
  const conf::ConfigSpace& space = objective.space();
  core::TuningResult result;
  std::set<math::Vec> seen;
  int stale_draws = 0;
  while (budget_left(result, max_evaluations)) {
    conf::Config candidate = space.sample_uniform(rng);
    if (!seen.insert(space.encode(candidate)).second) {
      // Duplicate; tolerate a few, then accept (tiny spaces).
      if (++stale_draws < 50) continue;
    }
    stale_draws = 0;
    core::record_trial(result, run_full(objective, candidate));
  }
  return result;
}

core::TuningResult grid_search(core::ObjectiveFunction& objective,
                               int max_evaluations, std::uint64_t seed,
                               std::size_t points_per_axis) {
  util::Rng rng(seed);
  const conf::ConfigSpace& space = objective.space();
  std::vector<conf::Config> grid = space.grid(points_per_axis);
  // Deterministic shuffle: a truncated grid should still cover the space
  // instead of exhausting the lexicographically-first corner.
  rng.shuffle(grid);

  core::TuningResult result;
  std::set<math::Vec> seen;
  for (const conf::Config& candidate : grid) {
    if (!budget_left(result, max_evaluations)) break;
    if (!seen.insert(space.encode(candidate)).second) continue;
    core::record_trial(result, run_full(objective, candidate));
  }
  return result;
}

// GCC 12 issues a -Wmaybe-uninitialized false positive from the string
// alternative of ParamValue when vector<ParamValue>::push_back's growth
// path is inlined here (libstdc++ variant storage, cf. GCC PR105562).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
core::TuningResult coordinate_descent(
    core::ObjectiveFunction& objective, int max_evaluations,
    std::uint64_t seed, const CoordinateDescentOptions& options) {
  util::Rng rng(seed);
  const conf::ConfigSpace& space = objective.space();
  core::TuningResult result;
  std::set<math::Vec> seen;

  const auto try_config = [&](const conf::Config& candidate) -> bool {
    // Returns true if the trial ran (false: duplicate or out of budget).
    if (!budget_left(result, max_evaluations)) return false;
    if (!seen.insert(space.encode(candidate)).second) return false;
    core::record_trial(result, run_full(objective, candidate));
    return true;
  };

  conf::Config current = space.sample_uniform(rng);
  try_config(current);
  if (result.found_feasible()) current = result.best_config;

  for (int sweep = 0;
       sweep < options.max_sweeps && budget_left(result, max_evaluations);
       ++sweep) {
    bool improved = false;
    for (std::size_t i = 0;
         i < space.num_params() && budget_left(result, max_evaluations); ++i) {
      const auto& p = space.param(i);
      if (!space.is_active(current, i)) continue;
      // Enumerate the axis: full menus for discrete kinds, quantiles for
      // continuous ones.
      std::vector<conf::ParamValue> values;
      switch (p.kind()) {
        case conf::ParamKind::kInt: {
          const std::size_t card = p.cardinality();
          const std::size_t n = std::min<std::size_t>(
              card, static_cast<std::size_t>(options.values_per_continuous_axis));
          values.reserve(n);
          for (std::size_t k = 0; k < n; ++k) {
            const double frac =
                n == 1 ? 0.5
                       : static_cast<double>(k) / static_cast<double>(n - 1);
            values.push_back(p.int_lo() + static_cast<std::int64_t>(std::llround(
                                              frac * static_cast<double>(
                                                         p.int_hi() - p.int_lo()))));
          }
          break;
        }
        case conf::ParamKind::kIntChoice:
          for (auto v : p.int_choices()) values.emplace_back(v);
          break;
        case conf::ParamKind::kContinuous: {
          const int n = options.values_per_continuous_axis;
          values.reserve(static_cast<std::size_t>(n));
          for (int k = 0; k < n; ++k) {
            const double frac = (static_cast<double>(k) + 0.5) /
                                static_cast<double>(n);
            if (p.log_scale()) {
              values.emplace_back(std::exp(
                  std::log(p.cont_lo()) +
                  frac * (std::log(p.cont_hi()) - std::log(p.cont_lo()))));
            } else {
              values.emplace_back(p.cont_lo() +
                                  frac * (p.cont_hi() - p.cont_lo()));
            }
          }
          break;
        }
        case conf::ParamKind::kCategorical:
          for (const auto& c : p.categories()) values.emplace_back(c);
          break;
        case conf::ParamKind::kBool:
          values.emplace_back(false);
          values.emplace_back(true);
          break;
      }
      for (const auto& v : values) {
        if (!budget_left(result, max_evaluations)) break;
        conf::Config candidate = current;
        candidate.set_value_at(i, v);
        space.canonicalize(candidate);
        try_config(candidate);
      }
      if (result.found_feasible() && !(result.best_config == current)) {
        current = result.best_config;
        improved = true;
      }
    }
    if (!improved) break;
  }
  return result;
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

core::TuningResult simulated_annealing(core::ObjectiveFunction& objective,
                                       int max_evaluations,
                                       std::uint64_t seed,
                                       const AnnealingOptions& options) {
  util::Rng rng(seed);
  const conf::ConfigSpace& space = objective.space();
  core::TuningResult result;

  conf::Config current = space.sample_uniform(rng);
  core::Trial first = run_full(objective, current);
  double current_value = first.succeeded()
                             ? std::log(first.outcome.objective)
                             : std::numeric_limits<double>::infinity();
  core::record_trial(result, std::move(first));

  double temperature = options.initial_temperature;
  while (budget_left(result, max_evaluations)) {
    conf::Config candidate =
        space.neighbor(current, rng, options.neighbor_sigma);
    core::Trial trial = run_full(objective, candidate);
    const double value = trial.succeeded()
                             ? std::log(trial.outcome.objective)
                             : std::numeric_limits<double>::infinity();
    bool accept = false;
    if (value < current_value) {
      accept = true;
    } else if (std::isfinite(value) && temperature > 1e-9) {
      accept = rng.bernoulli(std::exp(-(value - current_value) / temperature));
    }
    if (accept) {
      current = candidate;
      current_value = value;
    }
    temperature *= options.cooling;
    core::record_trial(result, std::move(trial));
  }
  return result;
}

namespace {

/// Aborts a run after a fixed wall-time budget, remembering the last metric
/// (successive halving ranks survivors by it).
class FixedBudgetController final : public core::RunController {
 public:
  explicit FixedBudgetController(double budget_seconds)
      : budget_(budget_seconds) {}

  bool should_abort(const core::RunCheckpoint& cp) override {
    last_metric_ = cp.metric;
    return cp.wall_seconds >= budget_;
  }

  double last_metric() const { return last_metric_; }

 private:
  double budget_;
  double last_metric_ = -std::numeric_limits<double>::infinity();
};

}  // namespace

core::TuningResult successive_halving(
    core::ObjectiveFunction& objective, int max_evaluations,
    std::uint64_t seed, const SuccessiveHalvingOptions& options) {
  util::Rng rng(seed);
  const conf::ConfigSpace& space = objective.space();
  core::TuningResult result;

  // Size the ladder to the budget: every rung run and every finalist's full
  // run costs one evaluation, and the finals are the only trials that yield
  // true objectives — they must fit or the search returns nothing.
  const auto planned_total = [&](int n0) {
    int total = 0;
    double n = n0;
    for (int rung = 0; rung < options.max_rungs && n > 1.0; ++rung) {
      total += static_cast<int>(n);
      n = std::max(1.0, std::floor(n / options.eta));
    }
    return total + static_cast<int>(n);  // finals
  };
  int initial = std::max(2, options.initial_configs);
  while (initial > 2 && planned_total(initial) > max_evaluations) --initial;

  std::vector<conf::Config> survivors = conf::latin_hypercube(
      space, static_cast<std::size_t>(initial), rng);
  double rung_budget = options.first_rung_seconds;

  for (int rung = 0; rung < options.max_rungs && survivors.size() > 1 &&
                     budget_left(result, max_evaluations);
       ++rung) {
    std::vector<std::pair<double, std::size_t>> scored;  // (-metric, idx)
    for (std::size_t i = 0;
         i < survivors.size() && budget_left(result, max_evaluations); ++i) {
      FixedBudgetController controller(rung_budget);
      core::Trial trial;
      trial.config = survivors[i];
      trial.outcome = objective.run(survivors[i], &controller);
      // A run short enough to *finish* inside the rung budget is a real
      // observation; aborted ones only contribute their ranking metric.
      scored.emplace_back(-controller.last_metric(), i);
      core::record_trial(result, std::move(trial));
    }
    std::sort(scored.begin(), scored.end());
    const std::size_t keep = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::floor(static_cast<double>(scored.size()) / options.eta)));
    std::vector<conf::Config> next;
    next.reserve(keep);
    for (std::size_t i = 0; i < keep; ++i)
      next.push_back(survivors[scored[i].second]);
    survivors = std::move(next);
    rung_budget *= options.eta;
  }

  // Finals: run the survivors to completion for true objective values.
  for (const conf::Config& finalist : survivors) {
    if (!budget_left(result, max_evaluations)) break;
    core::record_trial(result, run_full(objective, finalist));
  }
  return result;
}

core::TuningResult cherrypick_bo(core::ObjectiveFunction& objective,
                                 int max_evaluations, std::uint64_t seed) {
  core::BoOptions options;
  options.seed = seed;
  options.max_evaluations = max_evaluations;
  options.initial_design_size = 6;
  options.acquisition = core::AcquisitionKind::kEi;
  options.early_term.enabled = false;
  core::BoTuner tuner(objective, std::move(options));
  return tuner.tune();
}

core::TuningResult autodml_bo(core::ObjectiveFunction& objective,
                              int max_evaluations, std::uint64_t seed,
                              core::BoOptions options) {
  options.seed = seed;
  options.max_evaluations = max_evaluations;
  core::BoTuner tuner(objective, std::move(options));
  return tuner.tune();
}

namespace {

core::TuningResult autodml_entry(core::ObjectiveFunction& objective,
                                 int max_evaluations, std::uint64_t seed) {
  return autodml_bo(objective, max_evaluations, seed);
}

core::TuningResult grid_entry(core::ObjectiveFunction& objective,
                              int max_evaluations, std::uint64_t seed) {
  return grid_search(objective, max_evaluations, seed);
}

core::TuningResult coord_entry(core::ObjectiveFunction& objective,
                               int max_evaluations, std::uint64_t seed) {
  return coordinate_descent(objective, max_evaluations, seed);
}

core::TuningResult anneal_entry(core::ObjectiveFunction& objective,
                                int max_evaluations, std::uint64_t seed) {
  return simulated_annealing(objective, max_evaluations, seed);
}

core::TuningResult sha_entry(core::ObjectiveFunction& objective,
                             int max_evaluations, std::uint64_t seed) {
  return successive_halving(objective, max_evaluations, seed);
}

}  // namespace

const std::vector<NamedTuner>& tuner_registry() {
  static const std::vector<NamedTuner> kRegistry = {
      {"autodml", &autodml_entry},   {"cherrypick", &cherrypick_bo},
      {"random", &random_search},    {"grid", &grid_entry},
      {"coordinate", &coord_entry},  {"annealing", &anneal_entry},
      {"sha", &sha_entry},
  };
  return kRegistry;
}

}  // namespace autodml::baselines

#!/usr/bin/env bash
# Tier-1 + sanitizer gate.
#
# Runs, in order:
#   1. the plain tier-1 build and test suite (ROADMAP.md contract);
#   2. the same suite under ASan+UBSan with AUTODML_CHECKED invariants on;
#   3. the same suite under TSan (exercises util/thread_pool and the
#      parallel-BO driver);
#   4. clang-tidy over src/ when the binary is available (the repo
#      .clang-tidy defines the check set);
#   5. the config-space linter over every shipped workload.
#
# Environment:
#   JOBS=N        parallelism (default: nproc)
#   SKIP_TSAN=1   skip the TSan leg (it is the slowest)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

run_suite() {
  local dir=$1
  shift
  echo "==== configure ${dir} ($*)"
  cmake -B "${dir}" -S . "$@" >/dev/null
  echo "==== build ${dir}"
  cmake --build "${dir}" -j "${JOBS}" | tail -n 1
  echo "==== test ${dir}"
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" | tail -n 3
}

run_suite build
run_suite build-asan -DAUTODML_SANITIZE="address;undefined" -DAUTODML_CHECKED=ON
if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  run_suite build-tsan -DAUTODML_SANITIZE=thread
fi

echo "==== clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  mapfile -t sources < <(git ls-files 'src/**/*.cpp')
  clang-tidy -p build --quiet "${sources[@]}"
else
  echo "clang-tidy not installed; skipping (config: .clang-tidy)"
fi

echo "==== config-space lint (shipped workloads)"
./build/examples/autodml_cli lint --all

echo "ALL CHECKS PASSED"

#!/usr/bin/env bash
# Tier-1 + sanitizer + static-analysis gate.
#
# Runs, in order:
#   1. the plain tier-1 build and test suite (ROADMAP.md contract),
#      followed by an explicit `ctest -L service` pass over the
#      tuning-as-a-service tests (DESIGN.md 6k);
#   2. adml-lint (tools/lint) over src/ and tools/ — determinism and
#      lock-discipline invariants, DESIGN.md 6g;
#   3. the same suite under ASan+UBSan with AUTODML_CHECKED invariants on;
#   4. the same suite under TSan (exercises util/thread_pool and the
#      parallel-BO driver);
#   5. a clang build with -Werror=thread-safety (Thread Safety Analysis
#      over the annotations in src/util/annotations.h), when clang++ is
#      available;
#   6. clang-tidy over src/ when the binary is available (the repo
#      .clang-tidy defines the check set);
#   7. the config-space linter over every shipped workload.
#
# Legs 5 and 6 need clang; locally they are skipped with a notice when it
# is not installed, but under CI (CI=true) a missing clang is a hard
# failure — the workflow is responsible for installing it, and silently
# skipping the only build that checks the annotations would defeat them.
#
# Environment:
#   JOBS=N        parallelism (default: nproc)
#   SKIP_TSAN=1   skip the TSan leg (it is the slowest)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

# Under CI, "tool missing" must fail the leg instead of skipping it.
require_or_skip() {
  local tool=$1
  if command -v "${tool}" >/dev/null 2>&1; then
    return 0
  fi
  if [[ "${CI:-false}" == "true" ]]; then
    echo "ERROR: ${tool} not installed but CI=true; install it in the workflow" >&2
    exit 1
  fi
  echo "${tool} not installed; skipping (runs in the CI lint job)"
  return 1
}

run_suite() {
  local dir=$1
  shift
  echo "==== configure ${dir} ($*)"
  cmake -B "${dir}" -S . "$@" >/dev/null
  echo "==== build ${dir}"
  cmake --build "${dir}" -j "${JOBS}" | tail -n 1
  echo "==== test ${dir}"
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" | tail -n 3
}

run_suite build

echo "==== service suite (ctest -L service)"
# Already ran inside run_suite; the explicit pass keeps the service layer's
# conformance/fuzz/stress/crash tests visible as their own gate.
ctest --test-dir build -L service --output-on-failure -j "${JOBS}" | tail -n 3

echo "==== adml-lint (determinism / lock-discipline linter)"
./build/tools/adml-lint src tools

run_suite build-asan -DAUTODML_SANITIZE="address;undefined" -DAUTODML_CHECKED=ON
if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  run_suite build-tsan -DAUTODML_SANITIZE=thread
fi

echo "==== clang thread-safety analysis"
if require_or_skip clang++; then
  # Build-only (tests already ran above); -Werror=thread-safety promotes
  # just the analysis group so unrelated clang warnings cannot mask it.
  cmake -B build-tsa -S . -DCMAKE_CXX_COMPILER=clang++ \
    -DCMAKE_CXX_FLAGS="-Werror=thread-safety" >/dev/null
  cmake --build build-tsa -j "${JOBS}" | tail -n 1
  ctest --test-dir build-tsa -R tsa_negative_compile --output-on-failure
fi

echo "==== clang-tidy"
if require_or_skip clang-tidy; then
  cmake -B build -S . >/dev/null  # compile_commands.json is always exported
  mapfile -t sources < <(git ls-files 'src/**/*.cpp')
  clang-tidy -p build --quiet "${sources[@]}"
fi

echo "==== config-space lint (shipped workloads)"
./build/examples/autodml_cli lint --all

echo "ALL CHECKS PASSED"

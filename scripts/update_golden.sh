#!/usr/bin/env bash
# Regenerate the golden-run snapshot (tests/golden/demo_run.json).
#
# Run this after an intentional change to proposal order, simulator
# physics, surrogate numerics, or metric instrumentation, then review the
# golden diff like any other code change:
#
#   scripts/update_golden.sh [build-dir]
#
# The golden file pins the canonical demo session (logreg-ads, 30
# evaluations, seed 1) — the same session `autodml_cli tune --demo` runs.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" --target golden_run_test -j >/dev/null

AUTODML_UPDATE_GOLDEN=1 "$BUILD_DIR/tests/golden_run_test" \
  --gtest_filter='GoldenRun.DemoSessionMatchesCheckedInSnapshot'

echo
echo "golden diff:"
git --no-pager diff --stat tests/golden/ || true
echo
echo "Re-run the suite to confirm: ctest --test-dir $BUILD_DIR -R GoldenRun"
